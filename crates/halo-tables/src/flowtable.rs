//! The [`FlowTable`] trait: the common interface every lookup structure
//! in the datapath implements.
//!
//! The classification pipeline (EMC probe, MegaFlow tuple space, the
//! kv-store index) only needs a handful of operations from a table:
//! insert, remove, and a *traced* lookup whose ordered memory/compute
//! steps ([`LookupTrace`]) drive both the software core model and the
//! HALO accelerator. Abstracting those behind one object-safe trait lets
//! `TupleSpace`, `KvStore`, the halo-check oracle, and the benches swap
//! table backends without duplicating dispatch code — the slot that
//! alternative exact-match designs such as Cuckoo++ (Le Scouarnec) or
//! EMOMA (Pontarelli et al.) would plug into.

use crate::cuckoo::{CuckooTable, TableFullError};
use crate::cuckoo_pp::CuckooPlusPlusTable;
use crate::emoma::EmomaTable;
use crate::key::FlowKey;
use crate::sfh::SfhTable;
use crate::trace::LookupTrace;
use halo_mem::{Addr, SimMemory};

/// An exact-match flow table living (usually) in simulated memory.
///
/// Object safe: the engine dispatches over `&dyn FlowTable`, and the
/// tuple space / kv-store are generic over `T: FlowTable`.
///
/// Inherent methods of the concrete tables keep their exact historical
/// signatures (e.g. [`SfhTable`]'s two-argument `lookup_traced`); the
/// trait methods below only bind when a caller goes through the
/// abstraction, so adopting the trait is behavior-preserving.
pub trait FlowTable: std::fmt::Debug {
    /// The table's metadata-line address — what the `RAX` implicit
    /// operand holds when issuing HALO lookup instructions. `None` for
    /// tables that do not live in simulated memory (e.g. a TCAM port),
    /// which therefore cannot be targeted by accelerator dispatch.
    fn meta_addr(&self) -> Option<Addr>;

    /// Number of installed entries.
    fn len(&self) -> usize;

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Whether the table holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Returns [`TableFullError`] when the backend cannot place the key
    /// (no cuckoo path, single-hash bucket full, TCAM at capacity); the
    /// table is unchanged in that case.
    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError>;

    /// Removes `key`, returning its value if present. Backends without
    /// remove support (see [`supports_remove`](Self::supports_remove))
    /// return `None` and leave the table unchanged.
    fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64>;

    /// Whether [`remove`](Self::remove) actually deletes entries. The
    /// SFH baseline models a lookup-only fast path and reports `false`;
    /// generic drivers degrade removes to lookups for such backends.
    fn supports_remove(&self) -> bool {
        true
    }

    /// Functional lookup (no timing side effects beyond the traced
    /// probe's reads of simulated memory).
    fn lookup(&self, mem: &SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key, false).result
    }

    /// Lookup that records the ordered memory/compute steps taken. With
    /// `software_locking`, backends that model optimistic locking add
    /// the version-counter reads a software implementation performs
    /// (§3.4); backends without a software lock ignore the flag.
    fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey, software_locking: bool) -> LookupTrace;

    /// Addresses an ideal prefetcher would warm for this table. Empty
    /// for tables outside simulated memory.
    fn warm_lines(&self) -> Vec<Addr>;

    /// Address of the optimistic-lock version counter, when the backend
    /// models one (writers bump it; software readers validate it).
    fn version_addr(&self) -> Option<Addr> {
        None
    }
}

impl FlowTable for CuckooTable {
    fn meta_addr(&self) -> Option<Addr> {
        Some(CuckooTable::meta_addr(self))
    }

    fn len(&self) -> usize {
        CuckooTable::len(self)
    }

    fn capacity(&self) -> usize {
        CuckooTable::capacity(self)
    }

    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        CuckooTable::insert(self, mem, key, value)
    }

    fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        CuckooTable::remove(self, mem, key)
    }

    fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey, software_locking: bool) -> LookupTrace {
        CuckooTable::lookup_traced(self, mem, key, software_locking)
    }

    fn warm_lines(&self) -> Vec<Addr> {
        self.all_lines().collect()
    }

    fn version_addr(&self) -> Option<Addr> {
        Some(CuckooTable::version_addr(self))
    }
}

impl FlowTable for CuckooPlusPlusTable {
    fn meta_addr(&self) -> Option<Addr> {
        Some(CuckooPlusPlusTable::meta_addr(self))
    }

    fn len(&self) -> usize {
        CuckooPlusPlusTable::len(self)
    }

    fn capacity(&self) -> usize {
        CuckooPlusPlusTable::capacity(self)
    }

    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        CuckooPlusPlusTable::insert(self, mem, key, value)
    }

    fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        CuckooPlusPlusTable::remove(self, mem, key)
    }

    fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey, software_locking: bool) -> LookupTrace {
        CuckooPlusPlusTable::lookup_traced(self, mem, key, software_locking)
    }

    fn warm_lines(&self) -> Vec<Addr> {
        self.all_lines().collect()
    }

    fn version_addr(&self) -> Option<Addr> {
        Some(CuckooPlusPlusTable::version_addr(self))
    }
}

impl FlowTable for EmomaTable {
    fn meta_addr(&self) -> Option<Addr> {
        Some(EmomaTable::meta_addr(self))
    }

    fn len(&self) -> usize {
        EmomaTable::len(self)
    }

    fn capacity(&self) -> usize {
        EmomaTable::capacity(self)
    }

    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        EmomaTable::insert(self, mem, key, value)
    }

    fn remove(&mut self, mem: &mut SimMemory, key: &FlowKey) -> Option<u64> {
        EmomaTable::remove(self, mem, key)
    }

    fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey, software_locking: bool) -> LookupTrace {
        EmomaTable::lookup_traced(self, mem, key, software_locking)
    }

    fn warm_lines(&self) -> Vec<Addr> {
        self.all_lines().collect()
    }

    fn version_addr(&self) -> Option<Addr> {
        Some(EmomaTable::version_addr(self))
    }
}

impl FlowTable for SfhTable {
    fn meta_addr(&self) -> Option<Addr> {
        Some(SfhTable::meta_addr(self))
    }

    fn len(&self) -> usize {
        SfhTable::len(self)
    }

    fn capacity(&self) -> usize {
        SfhTable::capacity(self)
    }

    fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), TableFullError> {
        SfhTable::insert(self, mem, key, value).map_err(|_| TableFullError)
    }

    /// The SFH baseline has no remove path; this is a no-op.
    fn remove(&mut self, _mem: &mut SimMemory, _key: &FlowKey) -> Option<u64> {
        None
    }

    fn supports_remove(&self) -> bool {
        false
    }

    /// SFH models no optimistic lock, so `software_locking` is ignored.
    fn lookup_traced(
        &self,
        mem: &SimMemory,
        key: &FlowKey,
        _software_locking: bool,
    ) -> LookupTrace {
        SfhTable::lookup_traced(self, mem, key)
    }

    fn warm_lines(&self) -> Vec<Addr> {
        self.all_lines().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(table: &mut dyn FlowTable, mem: &mut SimMemory) {
        let k = FlowKey::synthetic(3, 13);
        assert_eq!(table.lookup(mem, &k), None);
        table.insert(mem, &k, 42).unwrap();
        assert_eq!(table.lookup(mem, &k), Some(42));
        assert_eq!(table.len(), 1);
        let tr = table.lookup_traced(mem, &k, false);
        assert_eq!(tr.result, Some(42));
        if table.supports_remove() {
            assert_eq!(table.remove(mem, &k), Some(42));
            assert!(table.is_empty());
        } else {
            assert_eq!(table.remove(mem, &k), None);
            assert_eq!(table.lookup(mem, &k), Some(42), "no-op remove");
        }
    }

    #[test]
    fn cuckoo_is_a_flow_table() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 64, 13);
        drive(&mut t, &mut mem);
        assert!(FlowTable::meta_addr(&t).is_some());
        assert!(FlowTable::version_addr(&t).is_some());
        assert!(!t.warm_lines().is_empty());
    }

    #[test]
    fn cuckoo_pp_is_a_flow_table() {
        let mut mem = SimMemory::new();
        let mut t = CuckooPlusPlusTable::create(&mut mem, 64, 13);
        drive(&mut t, &mut mem);
        assert!(FlowTable::meta_addr(&t).is_some());
        assert!(FlowTable::version_addr(&t).is_some());
        assert!(!t.warm_lines().is_empty());
    }

    #[test]
    fn emoma_is_a_flow_table() {
        let mut mem = SimMemory::new();
        let mut t = EmomaTable::create(&mut mem, 64, 13);
        drive(&mut t, &mut mem);
        assert!(FlowTable::meta_addr(&t).is_some());
        assert!(FlowTable::version_addr(&t).is_some());
        assert!(!t.warm_lines().is_empty());
    }

    #[test]
    fn sfh_is_a_flow_table() {
        let mut mem = SimMemory::new();
        let mut t = SfhTable::create(&mut mem, 64, 13);
        drive(&mut t, &mut mem);
        assert!(FlowTable::meta_addr(&t).is_some());
        assert!(FlowTable::version_addr(&t).is_none());
    }

    /// The trait's locking flag adds the same version reads the
    /// inherent cuckoo path records.
    #[test]
    fn trait_lookup_traced_preserves_locking_steps() {
        let mut mem = SimMemory::new();
        let mut t = CuckooTable::create(&mut mem, 64, 13);
        let k = FlowKey::synthetic(9, 13);
        t.insert(&mut mem, &k, 1).unwrap();
        let dt: &dyn FlowTable = &t;
        let with = dt.lookup_traced(&mem, &k, true);
        let without = dt.lookup_traced(&mem, &k, false);
        assert_eq!(with.steps.len(), without.steps.len() + 2);
    }
}
