//! A single-function hash table (SFH): the baseline the paper compares
//! against cuckoo hashing in §3.3.
//!
//! Each key maps to exactly one 8-entry bucket; a full bucket rejects
//! further inserts. To install the same number of flows without
//! rejections, an SFH table must be allocated far larger than a cuckoo
//! table (the paper observes ~20% utilization), wasting cache space —
//! which is precisely why its LLC miss rate explodes in Fig. 4.

use crate::hash::{hash_key, signature, SEED_PRIMARY};
use crate::key::FlowKey;
use crate::layout::{allocate_table, TableMeta, ENTRIES_PER_BUCKET};
use crate::trace::{LookupTrace, TraceStep};
use halo_mem::{Addr, SimMemory};
use std::fmt;

/// Error: the single candidate bucket is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketFullError;

impl fmt::Display for BucketFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "single-hash bucket full")
    }
}

impl std::error::Error for BucketFullError {}

/// A single-hash-function table handle.
///
/// # Examples
///
/// ```
/// use halo_mem::SimMemory;
/// use halo_tables::{FlowKey, SfhTable};
///
/// let mut mem = SimMemory::new();
/// let mut t = SfhTable::create(&mut mem, 1024, 13);
/// let k = FlowKey::synthetic(1, 13);
/// t.insert(&mut mem, &k, 5).unwrap();
/// assert_eq!(t.lookup(&mut mem, &k), Some(5));
/// ```
#[derive(Debug)]
pub struct SfhTable {
    meta_addr: Addr,
    meta: TableMeta,
    free: Vec<u32>,
    len: usize,
    rejected: u64,
}

impl SfhTable {
    /// Creates a table with `buckets` buckets (power of two).
    ///
    /// # Panics
    ///
    /// Panics on a non-power-of-two bucket count or oversized key length.
    pub fn create(mem: &mut SimMemory, buckets: u64, key_len: usize) -> Self {
        let (meta_addr, meta) = allocate_table(mem, buckets, key_len);
        let slots = (buckets as usize) * ENTRIES_PER_BUCKET;
        SfhTable {
            meta_addr,
            meta,
            free: (0..slots as u32).rev().collect(),
            len: 0,
            rejected: 0,
        }
    }

    /// Sizes a table so `flows` uniformly hashed keys are very unlikely
    /// to overflow any bucket (one bucket per expected flow — matching
    /// the paper's observation that SFH wastes ~5x the space).
    pub fn with_capacity_for(mem: &mut SimMemory, flows: usize, key_len: usize) -> Self {
        let buckets = (flows as u64).max(1).next_power_of_two();
        SfhTable::create(mem, buckets, key_len)
    }

    /// The metadata-line address.
    #[must_use]
    pub fn meta_addr(&self) -> Addr {
        self.meta_addr
    }

    /// The table layout.
    #[must_use]
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Installed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.meta.buckets as usize * ENTRIES_PER_BUCKET
    }

    /// Fraction of slots occupied.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Inserts rejected because their bucket was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Bytes occupied in simulated memory.
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.meta.footprint()
    }

    fn bucket_of(&self, key: &FlowKey) -> u64 {
        hash_key(key, SEED_PRIMARY) & (self.meta.buckets - 1)
    }

    /// Inserts or updates `key -> value`.
    ///
    /// # Errors
    ///
    /// Returns [`BucketFullError`] if the key's bucket has no free entry.
    pub fn insert(
        &mut self,
        mem: &mut SimMemory,
        key: &FlowKey,
        value: u64,
    ) -> Result<(), BucketFullError> {
        assert_eq!(key.len(), self.meta.key_len as usize);
        let b = self.bucket_of(key);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        let mut free_e = None;
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == sig && self.meta.read_kv_key(mem, idx) == *key {
                self.meta.write_kv_value(mem, idx, value);
                return Ok(());
            }
            if s == 0 && free_e.is_none() {
                free_e = Some(e);
            }
        }
        let Some(e) = free_e else {
            self.rejected += 1;
            return Err(BucketFullError);
        };
        let idx = self.free.pop().expect("slot count matches entry count");
        self.meta.write_kv(mem, idx, key, value);
        self.meta.write_entry(mem, b, e, sig, idx);
        self.len += 1;
        Ok(())
    }

    /// Functional lookup.
    #[must_use]
    pub fn lookup(&self, mem: &SimMemory, key: &FlowKey) -> Option<u64> {
        self.lookup_traced(mem, key).result
    }

    /// Lookup with the recorded access trace.
    #[must_use]
    pub fn lookup_traced(&self, mem: &SimMemory, key: &FlowKey) -> LookupTrace {
        assert_eq!(key.len(), self.meta.key_len as usize);
        let mut steps = vec![TraceStep::LoadMeta(self.meta_addr), TraceStep::Hash];
        let b = self.bucket_of(key);
        let sig = signature(hash_key(key, SEED_PRIMARY));
        steps.push(TraceStep::LoadBucket(self.meta.bucket_addr(b)));
        steps.push(TraceStep::CompareSigs);
        let mut result = None;
        for e in 0..ENTRIES_PER_BUCKET {
            let (s, idx) = self.meta.read_entry(mem, b, e);
            if s == sig {
                let kv = self.meta.kv_addr(idx);
                steps.push(TraceStep::LoadKv(kv));
                if self.meta.kv_slot > 64 {
                    steps.push(TraceStep::LoadKv(kv + 64));
                }
                steps.push(TraceStep::CompareKey);
                if self.meta.read_kv_key(mem, idx) == *key {
                    result = Some(self.meta.read_kv_value(mem, idx));
                    break;
                }
            }
        }
        LookupTrace { result, steps }
    }

    /// All cache lines the table spans (for warm-up).
    pub fn all_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let meta = self.meta_addr;
        let buckets = (0..self.meta.buckets).map(move |b| self.meta.bucket_addr(b));
        let kv_lines = self.meta.buckets * ENTRIES_PER_BUCKET as u64 * u64::from(self.meta.kv_slot)
            / halo_mem::CACHE_LINE;
        let kv = (0..kv_lines).map(move |i| self.meta.kv_base + i * halo_mem::CACHE_LINE);
        std::iter::once(meta).chain(buckets).chain(kv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup() {
        let mut mem = SimMemory::new();
        let mut t = SfhTable::create(&mut mem, 64, 13);
        let k = FlowKey::synthetic(1, 13);
        t.insert(&mut mem, &k, 10).unwrap();
        assert_eq!(t.lookup(&mem, &k), Some(10));
        assert_eq!(t.lookup(&mem, &FlowKey::synthetic(2, 13)), None);
    }

    #[test]
    fn update_in_place() {
        let mut mem = SimMemory::new();
        let mut t = SfhTable::create(&mut mem, 64, 13);
        let k = FlowKey::synthetic(1, 13);
        t.insert(&mut mem, &k, 10).unwrap();
        t.insert(&mut mem, &k, 20).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&mem, &k), Some(20));
    }

    #[test]
    fn rejects_when_bucket_full_and_utilization_is_low() {
        let mut mem = SimMemory::new();
        // Small table, many keys: some buckets overflow well before the
        // table is full — the paper's low-utilization observation.
        let mut t = SfhTable::create(&mut mem, 16, 13);
        let mut rejected = 0;
        for id in 0..128u64 {
            if t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "expected overflow rejections");
        assert_eq!(t.rejected(), rejected);
        assert!(t.occupancy() < 1.0);
    }

    #[test]
    fn sfh_needs_more_space_than_cuckoo_for_same_flows() {
        let mut mem = SimMemory::new();
        let flows = 10_000;
        let sfh = SfhTable::with_capacity_for(&mut mem, flows, 13);
        let cuckoo = crate::CuckooTable::with_capacity_for(&mut mem, flows, 0.9, 13);
        assert!(
            sfh.footprint() > 3 * cuckoo.footprint(),
            "sfh {} vs cuckoo {}",
            sfh.footprint(),
            cuckoo.footprint()
        );
    }

    #[test]
    fn trace_has_single_bucket_probe() {
        let mut mem = SimMemory::new();
        let mut t = SfhTable::create(&mut mem, 64, 13);
        let k = FlowKey::synthetic(1, 13);
        t.insert(&mut mem, &k, 10).unwrap();
        let tr = t.lookup_traced(&mem, &k);
        let buckets = tr
            .steps
            .iter()
            .filter(|s| matches!(s, TraceStep::LoadBucket(_)))
            .count();
        assert_eq!(buckets, 1);
        assert_eq!(tr.result, Some(10));
    }

    #[test]
    fn capacity_sizing_admits_all_flows() {
        let mut mem = SimMemory::new();
        let mut t = SfhTable::with_capacity_for(&mut mem, 2000, 13);
        let mut ok = 0;
        for id in 0..2000u64 {
            if t.insert(&mut mem, &FlowKey::synthetic(id, 13), id).is_ok() {
                ok += 1;
            }
        }
        assert!(ok as f64 > 2000.0 * 0.99, "only {ok}/2000 admitted");
        assert!(t.occupancy() < 0.25, "paper reports ~20% utilization");
    }
}
