//! # halo-tables
//!
//! Flow-table substrate for the HALO reproduction: the DPDK
//! `rte_hash`-style [`CuckooTable`] (8-way buckets, 16-bit signatures,
//! separate key-value array, each bucket aligned to one cache line), the
//! single-function-hash [`SfhTable`] baseline of §3.3, and two
//! literature variants that change exactly the access pattern the
//! simulator models: [`CuckooPlusPlusTable`] (per-bucket presence
//! filters kill the secondary probe on negative lookups) and
//! [`EmomaTable`] (an on-chip counting Bloom filter steers every lookup
//! to a single bucket access). All are laid out in simulated physical
//! memory so the cache model observes the real access patterns.
//!
//! Lookups can be *traced* ([`LookupTrace`]): the ordered memory/compute
//! steps are the common contract consumed by the software core model
//! (`halo-cpu`) and the near-cache accelerator (`halo-accel`).
//!
//! # Examples
//!
//! ```
//! use halo_mem::SimMemory;
//! use halo_tables::{CuckooTable, FlowKey};
//!
//! let mut mem = SimMemory::new();
//! let mut table = CuckooTable::with_capacity_for(&mut mem, 100, 0.9, 13);
//! for id in 0..100 {
//!     table.insert(&mut mem, &FlowKey::synthetic(id, 13), id).unwrap();
//! }
//! let trace = table.lookup_traced(&mut mem, &FlowKey::synthetic(7, 13), false);
//! assert_eq!(trace.result, Some(7));
//! assert!(trace.memory_steps() >= 2); // meta + bucket (+ kv)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cuckoo;
mod cuckoo_pp;
mod emoma;
mod flowtable;
mod hash;
mod key;
mod layout;
mod path;
mod sfh;
mod trace;

pub use cuckoo::{CuckooTable, PendingMove, TableFullError};
pub use cuckoo_pp::{CuckooPlusPlusTable, PendingMovePp, FILTER_OFF, FILTER_SLOTS};
pub use emoma::{EmomaPendingMove, EmomaTable};
pub use flowtable::FlowTable;
pub use hash::{bucket_pair, hash_key, signature, SEED_PRIMARY, SEED_SECONDARY};
pub use key::{FlowKey, MAX_KEY_LEN};
pub use layout::{allocate_table, TableMeta, ENTRIES_PER_BUCKET};
pub use sfh::{BucketFullError, SfhTable};
pub use trace::{LookupTrace, TraceStep};
