//! Set-associative cache arrays with LRU replacement and per-line
//! coherence metadata.
//!
//! The arrays track *presence and state only*; data always lives in
//! [`SimMemory`](crate::SimMemory). That is sufficient because the timing
//! model cares about where a line is, not about duplicating its bytes.

use crate::addr::LineAddr;
use crate::config::CacheGeometry;

/// Coherence state of a cached line (MESI without the E optimization:
/// lines enter S on reads and M on writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Shared, clean.
    Shared,
    /// Modified, dirty.
    Modified,
}

/// Metadata for one cached line.
#[derive(Debug, Clone)]
pub struct LineMeta {
    /// Which line this way currently holds.
    pub line: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// LRU timestamp (monotonic per array).
    pub lru: u64,
    /// Bitmask of cores holding the line (LLC directory only).
    pub sharers: u64,
    /// HALO hardware lock bit (LLC only): set while an accelerator query
    /// holds the line; modifications are refused until cleared.
    pub locked: bool,
    /// Core-valid bit for accelerator metadata caches (LLC only): set
    /// when a CHA metadata cache holds a copy of this line.
    pub accel_cv: bool,
}

/// What happened to a victim on insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No line was displaced.
    None,
    /// A clean line was silently dropped.
    Clean(LineAddr),
    /// A dirty line must be written back; carries its sharers mask so
    /// inclusive caches can back-invalidate.
    Dirty(LineAddr),
}

/// A set-associative array with strict-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    /// `sets * ways` slots; `None` = invalid way.
    slots: Vec<Option<LineMeta>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Builds an empty array from a geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        CacheArray {
            sets,
            ways: geom.ways,
            slots: vec![None; sets * geom.ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        // Mix upper bits in so that power-of-two strides (hash-table
        // buckets) don't all collide on the same set.
        let h = line.0 ^ (line.0 >> 13);
        (h as usize) & (self.sets - 1)
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_index(line);
        s * self.ways..(s + 1) * self.ways
    }

    /// Looks up `line`, updating LRU and hit/miss counters. Returns a
    /// mutable reference to the line's metadata on hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let mut found: Option<usize> = None;
        for i in range {
            if let Some(meta) = &self.slots[i] {
                if meta.line == line {
                    found = Some(i);
                    break;
                }
            }
        }
        match found {
            Some(i) => {
                self.hits += 1;
                let meta = self.slots[i].as_mut().expect("hit slot valid");
                meta.lru = tick;
                Some(meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without perturbing LRU or counters.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&LineMeta> {
        self.set_range(line)
            .filter_map(|i| self.slots[i].as_ref())
            .find(|m| m.line == line)
    }

    /// Mutable peek without LRU/counter side effects.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        let range = self.set_range(line);
        self.slots[range]
            .iter_mut()
            .filter_map(Option::as_mut)
            .find(|m| m.line == line)
    }

    /// Inserts `line` (which must not be present), evicting the LRU way if
    /// the set is full. Locked lines are never chosen as victims.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Eviction {
        debug_assert!(self.peek(line).is_none(), "double insert of {line}");
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let meta = LineMeta {
            line,
            state,
            lru: tick,
            sharers: 0,
            locked: false,
            accel_cv: false,
        };
        // Free way?
        for i in range.clone() {
            if self.slots[i].is_none() {
                self.slots[i] = Some(meta);
                return Eviction::None;
            }
        }
        // Evict LRU among unlocked ways.
        let victim = range
            .clone()
            .filter(|&i| !self.slots[i].as_ref().expect("full set").locked)
            .min_by_key(|&i| self.slots[i].as_ref().expect("full set").lru)
            // Pathological case: every way locked. Fall back to raw LRU —
            // the timing model will have serialized those queries anyway.
            .unwrap_or_else(|| {
                range
                    .clone()
                    .min_by_key(|&i| self.slots[i].as_ref().expect("full set").lru)
                    .expect("non-empty set")
            });
        let old = self.slots[victim].replace(meta).expect("victim valid");
        match old.state {
            LineState::Modified => Eviction::Dirty(old.line),
            LineState::Shared => Eviction::Clean(old.line),
        }
    }

    /// Removes `line` if present, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let range = self.set_range(line);
        for i in range {
            if self.slots[i].as_ref().is_some_and(|m| m.line == line) {
                return self.slots[i].take();
            }
        }
        None
    }

    /// Hit count since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over every resident line's metadata without perturbing
    /// LRU state or hit/miss counters (for invariant audits).
    pub fn iter_lines(&self) -> impl Iterator<Item = &LineMeta> + '_ {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Total capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Drops all lines and counters.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways of 64B lines = 256B.
        CacheArray::new(CacheGeometry {
            capacity: 256,
            ways: 2,
        })
    }

    /// Two distinct lines that map to the same set of `c`.
    fn same_set_lines(c: &CacheArray) -> (LineAddr, LineAddr, LineAddr) {
        let base = LineAddr(1);
        let mut found = Vec::new();
        for i in 2..1000 {
            let cand = LineAddr(i);
            if c.set_index(cand) == c.set_index(base) {
                found.push(cand);
                if found.len() == 2 {
                    break;
                }
            }
        }
        (base, found[0], found[1])
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.lookup(LineAddr(5)).is_none());
        c.insert(LineAddr(5), LineState::Shared);
        assert!(c.lookup(LineAddr(5)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        // Touch `a` so `b` becomes LRU.
        assert!(c.lookup(a).is_some());
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Clean(b));
        assert!(c.peek(a).is_some());
        assert!(c.peek(b).is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Modified);
        c.insert(b, LineState::Shared);
        assert!(c.lookup(b).is_some()); // make `a` LRU
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Dirty(a));
    }

    #[test]
    fn locked_lines_survive_eviction() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.peek_mut(a).unwrap().locked = true;
        c.insert(b, LineState::Shared);
        // `a` is LRU but locked, so `b` must be the victim.
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Clean(b));
        assert!(c.peek(a).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(LineAddr(9), LineState::Modified);
        let meta = c.invalidate(LineAddr(9)).unwrap();
        assert_eq!(meta.state, LineState::Modified);
        assert!(c.peek(LineAddr(9)).is_none());
        assert!(c.invalidate(LineAddr(9)).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.insert(LineAddr(1), LineState::Shared);
        let (h, m) = (c.hits(), c.misses());
        let _ = c.peek(LineAddr(1));
        let _ = c.peek(LineAddr(2));
        assert_eq!((c.hits(), c.misses()), (h, m));
    }

    #[test]
    fn resident_tracks_occupancy() {
        let mut c = tiny();
        assert_eq!(c.resident(), 0);
        c.insert(LineAddr(1), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        assert_eq!(c.resident(), 2);
        assert_eq!(c.capacity_lines(), 4);
        c.clear();
        assert_eq!(c.resident(), 0);
    }
}
