//! Set-associative cache arrays with LRU replacement and per-line
//! coherence metadata.
//!
//! The arrays track *presence and state only*; data always lives in
//! [`SimMemory`](crate::SimMemory). That is sufficient because the timing
//! model cares about where a line is, not about duplicating its bytes.
//!
//! # Layout
//!
//! Each array is a split flat structure (DESIGN.md §9): a dense tag
//! array (`u64` per way, [`TAG_INVALID`] marking empty ways) that the
//! probe loops scan with plain integer compares, and a parallel
//! [`LineMeta`] array holding the coherence state of valid ways. The
//! probe path therefore touches the minimum number of host cache lines
//! and carries no `Option` branching — the same discipline the paper's
//! bucket layouts apply to the simulated machine.

use crate::addr::LineAddr;
use crate::config::CacheGeometry;

/// Tag value marking an invalid (empty) way. Line addresses are byte
/// addresses shifted right by 6, so no reachable line collides with it.
const TAG_INVALID: u64 = u64::MAX;

/// Coherence state of a cached line (MESI without the E optimization:
/// lines enter S on reads and M on writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Shared, clean.
    Shared,
    /// Modified, dirty.
    Modified,
}

/// Metadata for one cached line.
#[derive(Debug, Clone)]
pub struct LineMeta {
    /// Which line this way currently holds. Mirrors the way's entry in
    /// the tag array; treat as read-only through `peek_mut`/`lookup`.
    pub line: LineAddr,
    /// Coherence state.
    pub state: LineState,
    /// LRU timestamp (monotonic per array).
    pub lru: u64,
    /// Bitmask of cores holding the line (LLC directory only).
    pub sharers: u64,
    /// HALO hardware lock bit (LLC only): set while an accelerator query
    /// holds the line; modifications are refused until cleared.
    pub locked: bool,
    /// Core-valid bit for accelerator metadata caches (LLC only): set
    /// when a CHA metadata cache holds a copy of this line.
    pub accel_cv: bool,
}

impl LineMeta {
    /// Placeholder stored behind invalid tags.
    fn invalid() -> Self {
        LineMeta {
            line: LineAddr(TAG_INVALID),
            state: LineState::Shared,
            lru: 0,
            sharers: 0,
            locked: false,
            accel_cv: false,
        }
    }
}

/// What happened to a victim on insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// No line was displaced.
    None,
    /// A clean line was silently dropped.
    Clean(LineAddr),
    /// A dirty line must be written back; carries its sharers mask so
    /// inclusive caches can back-invalidate.
    Dirty(LineAddr),
}

/// A set-associative array with strict-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    /// `sets * ways` tags; [`TAG_INVALID`] = invalid way. Probed first.
    tags: Vec<u64>,
    /// Parallel per-way metadata; meaningful only where the tag is valid.
    meta: Vec<LineMeta>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// Live count of valid ways (kept in sync by insert/invalidate/clear
    /// so occupancy reads never rescan the whole array).
    resident: usize,
}

impl CacheArray {
    /// Builds an empty array from a geometry.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        let slots = sets * geom.ways;
        CacheArray {
            sets,
            ways: geom.ways,
            tags: vec![TAG_INVALID; slots],
            meta: vec![LineMeta::invalid(); slots],
            tick: 0,
            hits: 0,
            misses: 0,
            resident: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        // Mix upper bits in so that power-of-two strides (hash-table
        // buckets) don't all collide on the same set.
        let h = line.0 ^ (line.0 >> 13);
        (h as usize) & (self.sets - 1)
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let s = self.set_index(line);
        s * self.ways..(s + 1) * self.ways
    }

    /// Scans one set's tags for `line`, returning the way index.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let range = self.set_range(line);
        self.tags[range.clone()]
            .iter()
            .position(|&t| t == line.0)
            .map(|w| range.start + w)
    }

    /// Looks up `line`, updating LRU and hit/miss counters. Returns a
    /// mutable reference to the line's metadata on hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        self.tick += 1;
        let tick = self.tick;
        match self.find(line) {
            Some(i) => {
                self.hits += 1;
                let meta = &mut self.meta[i];
                meta.lru = tick;
                Some(meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without perturbing LRU or counters.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&LineMeta> {
        self.find(line).map(|i| &self.meta[i])
    }

    /// Mutable peek without LRU/counter side effects.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        self.find(line).map(|i| &mut self.meta[i])
    }

    /// Inserts `line` (which must not be present), evicting the LRU way if
    /// the set is full. Locked lines are never chosen as victims.
    pub fn insert(&mut self, line: LineAddr, state: LineState) -> Eviction {
        debug_assert!(self.peek(line).is_none(), "double insert of {line}");
        debug_assert!(line.0 != TAG_INVALID, "line collides with the invalid tag");
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let meta = LineMeta {
            line,
            state,
            lru: tick,
            sharers: 0,
            locked: false,
            accel_cv: false,
        };
        // One pass over the set: take the first free way, tracking the
        // LRU victim among unlocked ways (and among all ways as the
        // all-locked fallback; strict `<` keeps the lowest-index
        // tie-break of the old min_by_key scan).
        let mut victim_unlocked: Option<usize> = None;
        let mut victim_any = range.start;
        let mut best_unlocked = u64::MAX;
        let mut best_any = u64::MAX;
        for i in range {
            if self.tags[i] == TAG_INVALID {
                self.tags[i] = line.0;
                self.meta[i] = meta;
                self.resident += 1;
                return Eviction::None;
            }
            let m = &self.meta[i];
            if m.lru < best_any {
                best_any = m.lru;
                victim_any = i;
            }
            if !m.locked && m.lru < best_unlocked {
                best_unlocked = m.lru;
                victim_unlocked = Some(i);
            }
        }
        // Pathological case: every way locked. Fall back to raw LRU —
        // the timing model will have serialized those queries anyway.
        let victim = victim_unlocked.unwrap_or(victim_any);
        self.tags[victim] = line.0;
        let old = std::mem::replace(&mut self.meta[victim], meta);
        match old.state {
            LineState::Modified => Eviction::Dirty(old.line),
            LineState::Shared => Eviction::Clean(old.line),
        }
    }

    /// Removes `line` if present, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let i = self.find(line)?;
        self.tags[i] = TAG_INVALID;
        self.resident -= 1;
        Some(std::mem::replace(&mut self.meta[i], LineMeta::invalid()))
    }

    /// Hit count since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid lines currently resident (O(1): maintained live
    /// by insert/invalidate/clear).
    #[must_use]
    pub fn resident(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.tags.iter().filter(|&&t| t != TAG_INVALID).count(),
            "live occupancy counter out of sync with tag array"
        );
        self.resident
    }

    /// Iterates over every resident line's metadata without perturbing
    /// LRU state or hit/miss counters (for invariant audits).
    pub fn iter_lines(&self) -> impl Iterator<Item = &LineMeta> + '_ {
        self.tags
            .iter()
            .zip(&self.meta)
            .filter(|(&t, _)| t != TAG_INVALID)
            .map(|(_, m)| m)
    }

    /// Total capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Drops all lines and counters.
    pub fn clear(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.hits = 0;
        self.misses = 0;
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets x 2 ways of 64B lines = 256B.
        CacheArray::new(CacheGeometry {
            capacity: 256,
            ways: 2,
        })
    }

    /// Two distinct lines that map to the same set of `c`.
    fn same_set_lines(c: &CacheArray) -> (LineAddr, LineAddr, LineAddr) {
        let base = LineAddr(1);
        let mut found = Vec::new();
        for i in 2..1000 {
            let cand = LineAddr(i);
            if c.set_index(cand) == c.set_index(base) {
                found.push(cand);
                if found.len() == 2 {
                    break;
                }
            }
        }
        (base, found[0], found[1])
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.lookup(LineAddr(5)).is_none());
        c.insert(LineAddr(5), LineState::Shared);
        assert!(c.lookup(LineAddr(5)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        // Touch `a` so `b` becomes LRU.
        assert!(c.lookup(a).is_some());
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Clean(b));
        assert!(c.peek(a).is_some());
        assert!(c.peek(b).is_none());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Modified);
        c.insert(b, LineState::Shared);
        assert!(c.lookup(b).is_some()); // make `a` LRU
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Dirty(a));
    }

    #[test]
    fn locked_lines_survive_eviction() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.peek_mut(a).unwrap().locked = true;
        c.insert(b, LineState::Shared);
        // `a` is LRU but locked, so `b` must be the victim.
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Clean(b));
        assert!(c.peek(a).is_some());
    }

    #[test]
    fn all_locked_set_falls_back_to_raw_lru() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        c.peek_mut(a).unwrap().locked = true;
        c.peek_mut(b).unwrap().locked = true;
        // `a` was inserted first, so it is the raw-LRU fallback victim.
        let ev = c.insert(d, LineState::Shared);
        assert_eq!(ev, Eviction::Clean(a));
        assert!(c.peek(d).is_some());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(LineAddr(9), LineState::Modified);
        let meta = c.invalidate(LineAddr(9)).unwrap();
        assert_eq!(meta.state, LineState::Modified);
        assert!(c.peek(LineAddr(9)).is_none());
        assert!(c.invalidate(LineAddr(9)).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.insert(LineAddr(1), LineState::Shared);
        let (h, m) = (c.hits(), c.misses());
        let _ = c.peek(LineAddr(1));
        let _ = c.peek(LineAddr(2));
        assert_eq!((c.hits(), c.misses()), (h, m));
    }

    #[test]
    fn resident_tracks_occupancy() {
        let mut c = tiny();
        assert_eq!(c.resident(), 0);
        c.insert(LineAddr(1), LineState::Shared);
        c.insert(LineAddr(2), LineState::Shared);
        assert_eq!(c.resident(), 2);
        assert_eq!(c.capacity_lines(), 4);
        c.clear();
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn resident_counter_survives_eviction_and_invalidate_churn() {
        let mut c = tiny();
        let (a, b, d) = same_set_lines(&c);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        // Set full: inserting `d` replaces a way, so occupancy is flat.
        c.insert(d, LineState::Shared);
        assert_eq!(c.resident(), 2);
        c.invalidate(d);
        assert_eq!(c.resident(), 1);
        // `resident()` cross-checks the live counter against a full
        // recount under debug assertions, so reaching here means the
        // bookkeeping matched at every step.
    }

    #[test]
    fn iter_lines_sees_exactly_the_resident_lines() {
        let mut c = tiny();
        c.insert(LineAddr(1), LineState::Shared);
        c.insert(LineAddr(2), LineState::Modified);
        c.invalidate(LineAddr(1));
        let lines: Vec<LineAddr> = c.iter_lines().map(|m| m.line).collect();
        assert_eq!(lines, vec![LineAddr(2)]);
    }
}
