//! Physical addresses and cache-line addressing.

use std::fmt;
use std::ops::Add;

/// Size of one cache line in bytes (64 B, as in all modern x86 servers;
/// the paper's hash-table buckets are laid out to occupy exactly one).
pub const CACHE_LINE: u64 = 64;

/// A simulated physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-line-granular address (byte address >> 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The null address. The allocator never hands this out, so it can be
    /// used as a sentinel.
    pub const NULL: Addr = Addr(0);

    /// The cache line containing this byte.
    #[must_use]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE)
    }

    /// Byte offset within the containing cache line.
    #[must_use]
    pub fn line_offset(self) -> u64 {
        self.0 % CACHE_LINE
    }

    /// Returns `true` for the null sentinel.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte address advanced by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl LineAddr {
    /// First byte of this line.
    #[must_use]
    pub fn base(self) -> Addr {
        Addr(self.0 * CACHE_LINE)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identifier of a hardware core (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

/// Identifier of an LLC slice / CHA (0-based). Each slice hosts one CHA
/// and, in HALO, one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SliceId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(130).line_offset(), 2);
        assert_eq!(LineAddr(3).base(), Addr(192));
    }

    #[test]
    fn null_sentinel() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(64).is_null());
    }

    #[test]
    fn offset_arithmetic() {
        assert_eq!(Addr(100).offset(28), Addr(128));
        assert_eq!(Addr(100) + 28, Addr(128));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(SliceId(7).to_string(), "slice7");
    }
}
