//! Machine configuration, calibrated to the paper's gem5 setup (Table 2)
//! and the latency observations of §3–§4.

use halo_sim::Cycles;

/// Geometry of one set-associative cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Number of sets given 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two, non-zero set
    /// count.
    #[must_use]
    pub fn sets(&self) -> usize {
        let lines = self.capacity / crate::addr::CACHE_LINE;
        let sets = lines as usize / self.ways;
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        sets
    }
}

/// Full machine configuration.
///
/// Defaults reproduce the paper's simulated CPU (Table 2): 16 OoO cores at
/// 2.1 GHz, 32 KB 8-way L1D, 1 MB 16-way L2, 32 MB shared LLC in 16 NUCA
/// slices, 20 MSHRs, 128/128/192 LQ/SQ/ROB entries, DDR4-2400.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of cores (each with private L1D and L2).
    pub cores: usize,
    /// Number of NUCA LLC slices (= number of CHAs = number of HALO
    /// accelerators).
    pub slices: usize,
    /// Private L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Private (non-inclusive victim in Skylake; modeled private inclusive
    /// here) L2 geometry.
    pub l2: CacheGeometry,
    /// Geometry of *one* LLC slice.
    pub llc_slice: CacheGeometry,
    /// L1D hit latency.
    pub l1_latency: Cycles,
    /// L2 hit latency (total, from issue).
    pub l2_latency: Cycles,
    /// LLC slice array access latency (excluding interconnect hops).
    pub llc_latency: Cycles,
    /// Per-hop latency on the on-chip interconnect.
    pub hop_latency: Cycles,
    /// Average DRAM access latency.
    pub dram_latency: Cycles,
    /// Number of independent DRAM channels.
    pub dram_channels: usize,
    /// Extra latency to pull a Modified line out of a remote core's
    /// private cache (the paper's §3.4: "more than 100 cycles").
    pub dirty_snoop_latency: Cycles,
    /// Latency for a CHA-attached accelerator to reach its *local* slice
    /// array. The paper reports near-cache access is ~4.1x faster than a
    /// core reaching LLC.
    pub accel_local_latency: Cycles,
    /// Miss-status-holding registers per core (bounds memory-level
    /// parallelism).
    pub mshrs: usize,
    /// Reorder-buffer entries (bounds the OoO scheduling window).
    pub rob: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// Issue width of the core (micro-ops per cycle).
    pub issue_width: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 16,
            slices: 16,
            l1d: CacheGeometry {
                capacity: 32 * 1024,
                ways: 8,
            },
            l2: CacheGeometry {
                capacity: 1024 * 1024,
                ways: 16,
            },
            llc_slice: CacheGeometry {
                capacity: 2 * 1024 * 1024, // 32 MB / 16 slices
                ways: 16,
            },
            l1_latency: Cycles(4),
            l2_latency: Cycles(14),
            llc_latency: Cycles(34),
            hop_latency: Cycles(2),
            dram_latency: Cycles(200),
            dram_channels: 6,
            dirty_snoop_latency: Cycles(100),
            accel_local_latency: Cycles(10),
            mshrs: 20,
            rob: 192,
            lq: 128,
            sq: 128,
            issue_width: 4,
        }
    }
}

impl MachineConfig {
    /// A small machine (4 cores / 4 slices, scaled-down caches) for fast
    /// unit tests.
    #[must_use]
    pub fn small() -> Self {
        MachineConfig {
            cores: 4,
            slices: 4,
            l1d: CacheGeometry {
                capacity: 8 * 1024,
                ways: 4,
            },
            l2: CacheGeometry {
                capacity: 64 * 1024,
                ways: 8,
            },
            llc_slice: CacheGeometry {
                capacity: 256 * 1024,
                ways: 16,
            },
            ..MachineConfig::default()
        }
    }

    /// Average interconnect distance (in hops) between a core and a slice,
    /// assuming a bidirectional ring of `slices` stops: `slices / 4` on
    /// average.
    #[must_use]
    pub fn avg_hops(&self) -> u64 {
        (self.slices as u64 / 4).max(1)
    }

    /// Average uncore latency for a core to reach an LLC slice: array
    /// access plus average interconnect traversal (both directions folded
    /// into the hop count).
    #[must_use]
    pub fn avg_core_to_llc(&self) -> Cycles {
        Cycles(self.llc_latency.0 + 2 * self.avg_hops() * self.hop_latency.0)
    }

    /// Total LLC capacity across slices.
    #[must_use]
    pub fn llc_capacity(&self) -> u64 {
        self.llc_slice.capacity * self.slices as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.cores, 16);
        assert_eq!(c.slices, 16);
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc_slice.sets(), 2048);
        assert_eq!(c.llc_capacity(), 32 * 1024 * 1024);
        assert_eq!(c.mshrs, 20);
        assert_eq!(c.rob, 192);
    }

    #[test]
    fn llc_round_trip_near_paper_values() {
        let c = MachineConfig::default();
        // Core→LLC should land in the ~34-50 cycle band typical of
        // Skylake-SP uncore latencies.
        let l = c.avg_core_to_llc().0;
        assert!((30..=60).contains(&l), "core-to-llc {l}");
        // Accelerator-local access must be several times faster; the paper
        // reports 4.1x.
        assert!(l / c.accel_local_latency.0 >= 3);
    }

    #[test]
    fn small_config_is_consistent() {
        let c = MachineConfig::small();
        assert_eq!(c.l1d.sets(), 32);
        assert!(c.cores == 4 && c.slices == 4);
    }
}
