//! Simulated physical memory: a sparse, paged byte store plus a bump
//! allocator.
//!
//! All simulated data structures (hash tables, key-value arrays, packet
//! buffers) live in a [`SimMemory`] so that the cache model can observe
//! the *real* addresses the algorithms touch.

use crate::addr::{Addr, CACHE_LINE};
use std::collections::HashMap;

const PAGE_SHIFT: u64 = 16; // 64 KiB pages
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Sparse simulated physical memory with a bump allocator.
///
/// Pages are materialized on first touch and zero-filled, so multi-GiB
/// table layouts cost only what they actually touch.
///
/// # Examples
///
/// ```
/// use halo_mem::SimMemory;
///
/// let mut mem = SimMemory::new();
/// let a = mem.alloc(16, 8);
/// mem.write_u64(a, 0xdead_beef);
/// assert_eq!(mem.read_u64(a), 0xdead_beef);
/// ```
#[derive(Debug, Default)]
pub struct SimMemory {
    pages: HashMap<u64, Box<[u8]>>,
    /// Next free byte for the bump allocator. Starts at one line so that
    /// address 0 stays a null sentinel.
    brk: u64,
}

impl SimMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        SimMemory {
            pages: HashMap::new(),
            brk: CACHE_LINE,
        }
    }

    /// Allocates `size` bytes aligned to `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        self.brk = base + size.max(1);
        Addr(base)
    }

    /// Allocates `size` bytes aligned to a cache line.
    pub fn alloc_lines(&mut self, size: u64) -> Addr {
        self.alloc(size, CACHE_LINE)
    }

    /// Total bytes handed out by the allocator.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.brk
    }

    /// Number of pages actually materialized.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&mut self, addr: u64) -> &mut [u8] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Pages never written read as zeros without being materialized, so
    /// read-only probes (and concurrent epoch-window readers) leave the
    /// page map untouched.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < buf.len() {
            let in_page = (PAGE_SIZE - (pos % PAGE_SIZE)) as usize;
            let n = in_page.min(buf.len() - done);
            let off = (pos % PAGE_SIZE) as usize;
            match self.pages.get(&(pos >> PAGE_SHIFT)) {
                Some(page) => buf[done..done + n].copy_from_slice(&page[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            pos += n as u64;
            done += n;
        }
    }

    /// Writes `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < data.len() {
            let in_page = (PAGE_SIZE - (pos % PAGE_SIZE)) as usize;
            let n = in_page.min(data.len() - done);
            let off = (pos % PAGE_SIZE) as usize;
            let page = self.page(pos);
            page[off..off + n].copy_from_slice(&data[done..done + n]);
            pos += n as u64;
            done += n;
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.write_bytes(addr, &[v]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(3, 1);
        let b = mem.alloc(8, 64);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 3);
    }

    #[test]
    fn alloc_never_returns_null() {
        let mut mem = SimMemory::new();
        assert!(!mem.alloc(1, 1).is_null());
    }

    #[test]
    fn scalar_roundtrips() {
        let mut mem = SimMemory::new();
        let a = mem.alloc(32, 8);
        mem.write_u64(a, u64::MAX - 5);
        mem.write_u32(a + 8, 77);
        mem.write_u16(a + 12, 999);
        mem.write_u8(a + 14, 42);
        assert_eq!(mem.read_u64(a), u64::MAX - 5);
        assert_eq!(mem.read_u32(a + 8), 77);
        assert_eq!(mem.read_u16(a + 12), 999);
        assert_eq!(mem.read_u8(a + 14), 42);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = SimMemory::new();
        let near_boundary = Addr(PAGE_SIZE - 3);
        let data = [1u8, 2, 3, 4, 5, 6];
        mem.write_bytes(near_boundary, &data);
        let mut back = [0u8; 6];
        mem.read_bytes(near_boundary, &mut back);
        assert_eq!(back, data);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn untouched_memory_is_zero() {
        let mem = SimMemory::new();
        assert_eq!(mem.read_u64(Addr(123_456)), 0);
        // Reads must not materialize pages.
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn sparse_allocation_is_cheap() {
        let mut mem = SimMemory::new();
        // "Allocate" a gigabyte; touch only a few bytes.
        let a = mem.alloc(1 << 30, 64);
        mem.write_u8(a, 1);
        assert!(mem.resident_pages() <= 2);
        assert!(mem.allocated() > 1 << 30);
    }
}
