//! # halo-mem
//!
//! The simulated multi-core memory hierarchy underneath the HALO
//! reproduction: sparse physical memory, private L1D/L2 caches, a NUCA
//! last-level cache sliced across CHAs, a ring interconnect, a sharer
//! directory with HALO's hardware lock bits, and DRAM channels.
//!
//! The central type is [`MemorySystem`]; workloads allocate their data
//! structures in its [`SimMemory`] and then issue timed accesses from
//! cores ([`MemorySystem::access`]) or from CHA-attached accelerators
//! ([`MemorySystem::accel_access`]).
//!
//! # Examples
//!
//! ```
//! use halo_mem::{AccessKind, Addr, CoreId, MachineConfig, MemorySystem};
//! use halo_sim::Cycle;
//!
//! let mut sys = MemorySystem::new(MachineConfig::small());
//! let buf = sys.data_mut().alloc_lines(4096);
//! sys.data_mut().write_u64(buf, 7);
//! let out = sys.access(CoreId(0), buf, AccessKind::Load, Cycle(0));
//! assert_eq!(sys.data_mut().read_u64(buf), 7);
//! assert!(out.complete > Cycle(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod config;
mod epoch;
mod locks;
mod memory;
mod system;

pub use addr::{Addr, CoreId, LineAddr, SliceId, CACHE_LINE};
pub use cache::{CacheArray, Eviction, LineMeta, LineState};
pub use config::{CacheGeometry, MachineConfig};
pub use epoch::{CoreMem, CowMem, EpochCore, MemCtx, WindowOutcome};
pub use locks::LockTable;
pub use memory::SimMemory;
pub use system::{AccessKind, AccessOutcome, HitLevel, MemorySystem};
