//! The HALO hardware-lock table: line address -> lock release cycle.
//!
//! A small open-addressed hash table with linear probing and
//! backward-shift deletion, replacing the general-purpose
//! `HashMap<LineAddr, Cycle>` the memory system used to carry
//! (DESIGN.md §9). The population is tiny (one entry per in-flight
//! accelerator query holding a line) and the probe runs on the store
//! hot path, so the table optimizes for short probes over dense
//! `(u64, u64)` pairs in contiguous memory and for allocation-free
//! expiry sweeps.

use crate::addr::LineAddr;
use halo_sim::Cycle;

/// Key value marking an empty slot. Line addresses are byte addresses
/// shifted right by 6, so no reachable line collides with it.
const EMPTY: u64 = u64::MAX;

/// Initial capacity (slots). Power of two; grows by doubling.
const INITIAL_CAPACITY: usize = 64;

/// Grow when `len * 4 > capacity * 3` (75% load), keeping probes short.
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// Fibonacci-hash a line address into a slot index.
#[inline]
fn slot_of(line: u64, mask: usize) -> usize {
    (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// Open-addressed `LineAddr -> Cycle` lock table.
#[derive(Debug, Clone)]
pub struct LockTable {
    /// Slot keys; [`EMPTY`] marks a free slot.
    keys: Vec<u64>,
    /// Release cycles, parallel to `keys`.
    rels: Vec<Cycle>,
    len: usize,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable::new()
    }
}

impl LockTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        LockTable {
            keys: vec![EMPTY; INITIAL_CAPACITY],
            rels: vec![Cycle(0); INITIAL_CAPACITY],
            len: 0,
        }
    }

    /// Number of held locks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no locks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    /// Finds the slot holding `line`, if present.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = slot_of(line, mask);
        loop {
            let k = self.keys[i];
            if k == line {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Release cycle of the lock on `line`, if held.
    #[must_use]
    pub fn get(&self, line: LineAddr) -> Option<Cycle> {
        self.find(line.0).map(|i| self.rels[i])
    }

    /// Sets the lock on `line` to release at `until`; if already held,
    /// the release time only ever extends (`max`).
    pub fn insert_max(&mut self, line: LineAddr, until: Cycle) {
        debug_assert!(line.0 != EMPTY, "line collides with the empty sentinel");
        if self.len + 1 > self.keys.len() * LOAD_NUM / LOAD_DEN {
            self.grow();
        }
        let mask = self.mask();
        let mut i = slot_of(line.0, mask);
        loop {
            let k = self.keys[i];
            if k == line.0 {
                self.rels[i] = self.rels[i].max(until);
                return;
            }
            if k == EMPTY {
                self.keys[i] = line.0;
                self.rels[i] = until;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes the lock on `line`, returning its release cycle.
    pub fn remove(&mut self, line: LineAddr) -> Option<Cycle> {
        let i = self.find(line.0)?;
        let rel = self.rels[i];
        self.delete_slot(i);
        Some(rel)
    }

    /// Deletes slot `i`, backward-shifting the following probe run so
    /// every surviving entry stays reachable (no tombstones).
    fn delete_slot(&mut self, mut i: usize) {
        let mask = self.mask();
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // `k`'s home slot; shift it back iff the vacated slot `i`
            // lies cyclically within [home, j).
            let home = slot_of(k, mask);
            let dist_home_j = j.wrapping_sub(home) & mask;
            let dist_home_i = i.wrapping_sub(home) & mask;
            if dist_home_i <= dist_home_j {
                self.keys[i] = k;
                self.rels[i] = self.rels[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
    }

    /// Removes every lock whose release time has passed by `now`,
    /// invoking `released` for each. Allocation-free: the sweep works
    /// directly on the slot array.
    pub fn sweep_expired(&mut self, now: Cycle, mut released: impl FnMut(LineAddr)) {
        let mut i = 0;
        while i < self.keys.len() {
            if self.keys[i] != EMPTY && self.rels[i] <= now {
                released(LineAddr(self.keys[i]));
                self.delete_slot(i);
                // The backward shift may have pulled a later (not yet
                // visited) entry into slot `i`; re-examine it.
            } else {
                i += 1;
            }
        }
    }

    /// Iterates over `(line, release)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, Cycle)> + '_ {
        self.keys
            .iter()
            .zip(&self.rels)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &r)| (LineAddr(k), r))
    }

    /// Releases every lock.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_rels = std::mem::replace(&mut self.rels, vec![Cycle(0); new_cap]);
        self.len = 0;
        for (k, r) in old_keys.into_iter().zip(old_rels) {
            if k != EMPTY {
                self.insert_max(LineAddr(k), r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_sim::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = LockTable::new();
        assert!(t.is_empty());
        t.insert_max(LineAddr(10), Cycle(100));
        assert_eq!(t.get(LineAddr(10)), Some(Cycle(100)));
        assert_eq!(t.get(LineAddr(11)), None);
        assert_eq!(t.remove(LineAddr(10)), Some(Cycle(100)));
        assert_eq!(t.remove(LineAddr(10)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn overlapping_locks_extend() {
        let mut t = LockTable::new();
        t.insert_max(LineAddr(5), Cycle(100));
        t.insert_max(LineAddr(5), Cycle(50));
        assert_eq!(t.get(LineAddr(5)), Some(Cycle(100)), "never shortens");
        t.insert_max(LineAddr(5), Cycle(300));
        assert_eq!(t.get(LineAddr(5)), Some(Cycle(300)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sweep_releases_exactly_the_expired() {
        let mut t = LockTable::new();
        for i in 0..50u64 {
            t.insert_max(LineAddr(i), Cycle(i * 10));
        }
        let mut released = Vec::new();
        t.sweep_expired(Cycle(245), |l| released.push(l.0));
        released.sort_unstable();
        assert_eq!(released, (0..25).collect::<Vec<u64>>());
        assert_eq!(t.len(), 25);
        for i in 0..50u64 {
            assert_eq!(t.get(LineAddr(i)).is_some(), i * 10 > 245, "line {i}");
        }
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = LockTable::new();
        for i in 0..1000u64 {
            t.insert_max(LineAddr(i * 7919), Cycle(i));
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(t.get(LineAddr(i * 7919)), Some(Cycle(i)));
        }
    }

    /// Differential check against a model map under a seeded op mix,
    /// including the backward-shift deletion paths that open addressing
    /// gets wrong most easily.
    #[test]
    fn agrees_with_hashmap_model_under_churn() {
        let mut t = LockTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(0x10C5);
        for step in 0..20_000u64 {
            let line = rng.next_u64() % 512; // small domain => collisions
            match rng.next_u64() % 4 {
                0 | 1 => {
                    let until = rng.next_u64() % 10_000;
                    t.insert_max(LineAddr(line), Cycle(until));
                    let e = model.entry(line).or_insert(0);
                    *e = (*e).max(until);
                }
                2 => {
                    let got = t.remove(LineAddr(line)).map(|c| c.0);
                    assert_eq!(got, model.remove(&line), "remove({line}) at {step}");
                }
                _ => {
                    let now = rng.next_u64() % 10_000;
                    let mut released = Vec::new();
                    t.sweep_expired(Cycle(now), |l| released.push(l.0));
                    let mut expected: Vec<u64> = model
                        .iter()
                        .filter(|(_, &r)| r <= now)
                        .map(|(&l, _)| l)
                        .collect();
                    model.retain(|_, &mut r| r > now);
                    released.sort_unstable();
                    expected.sort_unstable();
                    assert_eq!(released, expected, "sweep({now}) at {step}");
                }
            }
            assert_eq!(t.len(), model.len(), "len at {step}");
        }
        // Final full agreement.
        let mut got: Vec<(u64, u64)> = t.iter().map(|(l, c)| (l.0, c.0)).collect();
        let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    /// First `n` line addresses whose home slot is `slot` in a table of
    /// `cap` slots (for building deliberate probe runs).
    fn lines_homing_at(slot: usize, cap: usize, n: usize) -> Vec<u64> {
        (0u64..)
            .filter(|&l| l != EMPTY && slot_of(l, cap - 1) == slot)
            .take(n)
            .collect()
    }

    /// `sweep_expired` deletes in place and re-examines the slot a
    /// backward shift refills — including when the probe run wraps from
    /// the last slot to slot 0. Three keys homing at the last slot
    /// occupy slots `cap-1`, `0`, `1`; expiring the run's first and
    /// third entries forces a shift *across* the wraparound boundary,
    /// and the survivor must stay reachable.
    #[test]
    fn sweep_backward_shift_across_wraparound_keeps_survivor_reachable() {
        let cap = INITIAL_CAPACITY;
        let last = cap - 1;
        let lines = lines_homing_at(last, cap, 3);
        let mut t = LockTable::new();
        t.insert_max(LineAddr(lines[0]), Cycle(10)); // slot cap-1 (expires)
        t.insert_max(LineAddr(lines[1]), Cycle(100)); // wraps to slot 0
        t.insert_max(LineAddr(lines[2]), Cycle(10)); // slot 1 (expires)

        let mut released = Vec::new();
        t.sweep_expired(Cycle(50), |l| released.push(l.0));
        released.sort_unstable();
        let mut expected = vec![lines[0], lines[2]];
        expected.sort_unstable();
        assert_eq!(released, expected);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(LineAddr(lines[1])),
            Some(Cycle(100)),
            "survivor shifted across the boundary must stay reachable"
        );
        assert_eq!(t.iter().count(), 1);
    }

    /// The wraparound case where the entry pulled backward into a
    /// just-vacated slot of the wrapped run is *itself* expired: the
    /// in-place re-examination must release it too (a plain `i += 1`
    /// sweep would skip it).
    #[test]
    fn sweep_re_examines_entry_shifted_across_wraparound() {
        let cap = INITIAL_CAPACITY;
        let last = cap - 1;
        let lines = lines_homing_at(last, cap, 3);
        let mut t = LockTable::new();
        for &l in &lines {
            t.insert_max(LineAddr(l), Cycle(10)); // all expire
        }
        let mut released = Vec::new();
        t.sweep_expired(Cycle(50), |l| released.push(l.0));
        released.sort_unstable();
        let mut expected = lines.clone();
        expected.sort_unstable();
        assert_eq!(released, expected, "every expired entry must release");
        assert!(t.is_empty());
    }

    /// Differential churn constrained to lines homing at the last few
    /// slots, so probe runs constantly straddle the wraparound boundary
    /// — the regime the uniform-domain churn test rarely exercises.
    #[test]
    fn wraparound_boundary_churn_agrees_with_model() {
        let cap = INITIAL_CAPACITY;
        // Enough keys per boundary slot that runs overflow past slot 0,
        // but few enough that the table never grows past `cap`.
        let keys: Vec<u64> = (0..4)
            .flat_map(|d| lines_homing_at(cap - 1 - d, cap, 6))
            .collect();
        let mut t = LockTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SplitMix64::new(0xB0_0517);
        for step in 0..10_000u64 {
            let line = keys[(rng.next_u64() % keys.len() as u64) as usize];
            match rng.next_u64() % 4 {
                0 | 1 => {
                    let until = rng.next_u64() % 10_000;
                    t.insert_max(LineAddr(line), Cycle(until));
                    let e = model.entry(line).or_insert(0);
                    *e = (*e).max(until);
                }
                2 => {
                    let got = t.remove(LineAddr(line)).map(|c| c.0);
                    assert_eq!(got, model.remove(&line), "remove({line}) at {step}");
                }
                _ => {
                    let now = rng.next_u64() % 10_000;
                    let mut released = Vec::new();
                    t.sweep_expired(Cycle(now), |l| released.push(l.0));
                    let mut expected: Vec<u64> = model
                        .iter()
                        .filter(|(_, &r)| r <= now)
                        .map(|(&l, _)| l)
                        .collect();
                    model.retain(|_, &mut r| r > now);
                    released.sort_unstable();
                    expected.sort_unstable();
                    assert_eq!(released, expected, "sweep({now}) at {step}");
                }
            }
            assert_eq!(t.len(), model.len(), "len at {step}");
            assert_eq!(t.keys.len(), cap, "domain sized to avoid growth");
        }
        for &k in &keys {
            assert_eq!(
                t.get(LineAddr(k)).map(|c| c.0),
                model.get(&k).copied(),
                "final lookup of {k}"
            );
        }
    }

    #[test]
    fn clear_empties() {
        let mut t = LockTable::new();
        for i in 0..10u64 {
            t.insert_max(LineAddr(i), Cycle(1));
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.get(LineAddr(3)), None);
    }
}
