//! The simulated memory system: private L1D/L2 per core, a NUCA LLC of
//! per-slice arrays fronted by CHAs, a ring interconnect, DRAM channels,
//! a sharer directory, and the HALO hardware lock bits.
//!
//! Timing follows the latency + occupancy model of
//! [`halo_sim::Resource`]; content state (which line is cached where, in
//! what state) is tracked exactly.

use crate::addr::{Addr, CoreId, LineAddr, SliceId};
use crate::cache::{CacheArray, Eviction, LineState};
use crate::config::MachineConfig;
use crate::locks::LockTable;
use crate::memory::SimMemory;
use halo_sim::{BankedResource, Cycle, Cycles, Resource, StatId, Stats, Tracer};

/// Kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write (obtains ownership, dirties the line).
    Store,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Private L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// LLC (clean or LLC-owned).
    Llc,
    /// LLC, but the line had to be pulled out of a remote core's private
    /// cache in Modified state (expensive core-to-core transfer).
    LlcRemoteDirty,
    /// Main memory.
    Dram,
}

/// Result of a timed memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Cycle at which the data is available / the store is ordered.
    pub complete: Cycle,
    /// The level that satisfied the access.
    pub level: HitLevel,
}

/// The full simulated memory hierarchy.
///
/// # Examples
///
/// ```
/// use halo_mem::{AccessKind, MachineConfig, MemorySystem, Addr, CoreId};
/// use halo_sim::Cycle;
///
/// let mut sys = MemorySystem::new(MachineConfig::small());
/// let a = sys.data_mut().alloc(64, 64);
/// // Cold access misses everywhere and goes to DRAM...
/// let cold = sys.access(CoreId(0), a, AccessKind::Load, Cycle(0));
/// // ...the refill leaves the line in L1, so a re-access hits.
/// let warm = sys.access(CoreId(0), a, AccessKind::Load, cold.complete);
/// assert!(warm.complete - cold.complete < cold.complete - Cycle(0));
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    pub(crate) cfg: MachineConfig,
    pub(crate) mem: SimMemory,
    pub(crate) l1d: Vec<CacheArray>,
    pub(crate) l2: Vec<CacheArray>,
    pub(crate) llc: Vec<CacheArray>,
    pub(crate) l1_port: Vec<BankedResource>,
    pub(crate) l2_port: Vec<Resource>,
    pub(crate) slice_port: Vec<Resource>,
    pub(crate) dram: BankedResource,
    /// HALO hardware lock bits: line -> cycle at which the lock releases.
    pub(crate) locks: LockTable,
    pub(crate) stats: Stats,
    pub(crate) ids: MemStatIds,
    /// Cycle-attribution sink (DESIGN.md §10). Off by default; every
    /// instrumented path checks [`Tracer::is_enabled`] first, so the
    /// disabled cost is one branch per access.
    pub(crate) tracer: Tracer,
}

/// Span op name for an access satisfied at `level` (core-initiated).
#[inline]
fn level_op(level: HitLevel) -> &'static str {
    match level {
        HitLevel::L1 => "l1",
        HitLevel::L2 => "l2",
        HitLevel::Llc => "llc",
        HitLevel::LlcRemoteDirty => "llc_dirty",
        HitLevel::Dram => "dram",
    }
}

/// Span op name for an accelerator-initiated access satisfied at
/// `level` (the CHA-side fast path; L1/L2 are unreachable from there).
#[inline]
fn accel_level_op(level: HitLevel) -> &'static str {
    match level {
        HitLevel::L1 | HitLevel::L2 => "accel_private",
        HitLevel::Llc => "accel_llc",
        HitLevel::LlcRemoteDirty => "accel_llc_dirty",
        HitLevel::Dram => "accel_dram",
    }
}

/// Pre-registered [`StatId`] handles for every counter the memory
/// system bumps, resolved once at construction so the access hot path
/// never performs a string lookup. `Stats::clear` zeroes values but
/// keeps registrations, so these handles survive `clear_stats`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemStatIds {
    pub(crate) mem_load: StatId,
    pub(crate) mem_store: StatId,
    pub(crate) l1d_hit: StatId,
    pub(crate) l1d_miss: StatId,
    pub(crate) l2_hit: StatId,
    pub(crate) l2_miss: StatId,
    pub(crate) llc_hit: StatId,
    pub(crate) llc_miss: StatId,
    pub(crate) dram_access: StatId,
    pub(crate) store_lock_retry: StatId,
    pub(crate) llc_dirty_snoop: StatId,
    pub(crate) mem_snapshot_read: StatId,
    pub(crate) accel_access: StatId,
    pub(crate) accel_llc_hit: StatId,
    pub(crate) accel_llc_miss: StatId,
    pub(crate) hw_lock_set: StatId,
    pub(crate) dma_write: StatId,
    pub(crate) flush_private: StatId,
    pub(crate) fault_force_evict: StatId,
    pub(crate) llc_writeback: StatId,
    pub(crate) llc_back_inval: StatId,
    pub(crate) private_writeback: StatId,
    pub(crate) coherence_invalidation: StatId,
}

impl MemStatIds {
    fn register(stats: &mut Stats) -> Self {
        MemStatIds {
            mem_load: stats.counter_id("mem.load"),
            mem_store: stats.counter_id("mem.store"),
            l1d_hit: stats.counter_id("l1d.hit"),
            l1d_miss: stats.counter_id("l1d.miss"),
            l2_hit: stats.counter_id("l2.hit"),
            l2_miss: stats.counter_id("l2.miss"),
            llc_hit: stats.counter_id("llc.hit"),
            llc_miss: stats.counter_id("llc.miss"),
            dram_access: stats.counter_id("dram.access"),
            store_lock_retry: stats.counter_id("store.lock_retry"),
            llc_dirty_snoop: stats.counter_id("llc.dirty_snoop"),
            mem_snapshot_read: stats.counter_id("mem.snapshot_read"),
            accel_access: stats.counter_id("accel.access"),
            accel_llc_hit: stats.counter_id("accel.llc_hit"),
            accel_llc_miss: stats.counter_id("accel.llc_miss"),
            hw_lock_set: stats.counter_id("hw_lock.set"),
            dma_write: stats.counter_id("dma.write"),
            flush_private: stats.counter_id("flush.private"),
            fault_force_evict: stats.counter_id("fault.force_evict"),
            llc_writeback: stats.counter_id("llc.writeback"),
            llc_back_inval: stats.counter_id("llc.back_inval"),
            private_writeback: stats.counter_id("private.writeback"),
            coherence_invalidation: stats.counter_id("coherence.invalidation"),
        }
    }
}

/// The Intel-style address hash assigning a line to its home slice.
#[inline]
pub(crate) fn slice_hash(line: LineAddr, slices: usize) -> SliceId {
    let h = line.0 ^ (line.0 >> 7) ^ (line.0 >> 17);
    SliceId((h as usize) % slices)
}

impl MemorySystem {
    /// Builds a cold memory system for `cfg`.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Self {
        let l1d = (0..cfg.cores).map(|_| CacheArray::new(cfg.l1d)).collect();
        let l2 = (0..cfg.cores).map(|_| CacheArray::new(cfg.l2)).collect();
        let llc = (0..cfg.slices)
            .map(|_| CacheArray::new(cfg.llc_slice))
            .collect();
        // Two load + one store pipe per cycle on modern cores: model as
        // three address-interleaved L1 banks.
        let l1_port = (0..cfg.cores)
            .map(|_| BankedResource::new("l1d", 3, cfg.l1_latency, Cycles(1)))
            .collect();
        let l2_port = (0..cfg.cores)
            .map(|_| Resource::new("l2", cfg.l2_latency, Cycles(2)))
            .collect();
        let slice_port = (0..cfg.slices)
            .map(|_| Resource::new("llc-slice", cfg.llc_latency, Cycles(2)))
            .collect();
        let dram =
            BankedResource::new("dram-chan", cfg.dram_channels, cfg.dram_latency, Cycles(12));
        let mut stats = Stats::new();
        let ids = MemStatIds::register(&mut stats);
        MemorySystem {
            cfg,
            mem: SimMemory::new(),
            l1d,
            l2,
            llc,
            l1_port,
            l2_port,
            slice_port,
            dram,
            locks: LockTable::new(),
            stats,
            ids,
            tracer: Tracer::off(),
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Immutable access to the backing data store (reads of absent pages
    /// return zeros without materializing them).
    #[must_use]
    pub fn data(&self) -> &SimMemory {
        &self.mem
    }

    /// Mutable access to the backing data store (functional reads and
    /// writes that should not be timed, e.g. table construction).
    pub fn data_mut(&mut self) -> &mut SimMemory {
        &mut self.mem
    }

    /// Collected statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Clears collected statistics (cache contents are preserved).
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// The cycle-attribution tracer (histograms + span ring buffer).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (enable/disable/clear/export).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Enables span recording with the given ring-buffer capacity
    /// (see [`Tracer::enable`]).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer.enable(capacity);
    }

    /// Whether tracing is on. Components owning no tracer of their own
    /// (core model, engine, vswitch) check this before assembling span
    /// arguments.
    #[inline]
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Records a span on behalf of another component (no-op while
    /// tracing is off).
    #[inline]
    pub fn trace_span(
        &mut self,
        component: &'static str,
        op: &'static str,
        start: Cycle,
        end: Cycle,
    ) {
        self.tracer.span(component, op, start, end);
    }

    /// The home LLC slice of a line (Intel-style address hash).
    #[must_use]
    pub fn home_slice(&self, line: LineAddr) -> SliceId {
        slice_hash(line, self.cfg.slices)
    }

    /// Ring-hop distance between a core and a slice (core `i` sits at ring
    /// stop `i % slices`).
    #[must_use]
    pub fn hops(&self, core: CoreId, slice: SliceId) -> u64 {
        let n = self.cfg.slices;
        let a = core.0 % n;
        let b = slice.0;
        let d = a.abs_diff(b);
        d.min(n - d) as u64
    }

    fn hops_slice(&self, from: SliceId, to: SliceId) -> u64 {
        let n = self.cfg.slices;
        let d = from.0.abs_diff(to.0);
        d.min(n - d) as u64
    }

    // ------------------------------------------------------------------
    // Core-initiated accesses
    // ------------------------------------------------------------------

    /// Performs a timed core access to `addr`.
    ///
    /// Updates cache contents, the directory, and statistics; returns the
    /// completion time and the satisfying level.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        at: Cycle,
    ) -> AccessOutcome {
        let out = self.access_untraced(core, addr, kind, at);
        if self.tracer.is_enabled() {
            self.tracer
                .span("mem", level_op(out.level), at, out.complete);
        }
        out
    }

    /// The uninstrumented access path ([`access`](Self::access) minus
    /// the hit-level span), shared by the traced wrapper.
    fn access_untraced(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        at: Cycle,
    ) -> AccessOutcome {
        assert!(core.0 < self.cfg.cores, "core out of range");
        let line = addr.line();
        match kind {
            AccessKind::Load => self.stats.inc(self.ids.mem_load),
            AccessKind::Store => self.stats.inc(self.ids.mem_store),
        }

        // L1 lookup.
        let t_l1 = self.l1_port[core.0].serve(line.0 as usize, at);
        if let Some(meta) = self.l1d[core.0].lookup(line) {
            let state = meta.state;
            self.stats.inc(self.ids.l1d_hit);
            if kind == AccessKind::Store && state != LineState::Modified {
                // Upgrade: invalidate other sharers through the directory.
                let t = self.upgrade_for_store(core, line, t_l1);
                self.touch_private_store(core, line);
                return AccessOutcome {
                    complete: t,
                    level: HitLevel::L1,
                };
            }
            if kind == AccessKind::Store {
                self.touch_private_store(core, line);
            }
            return AccessOutcome {
                complete: t_l1,
                level: HitLevel::L1,
            };
        }
        self.stats.inc(self.ids.l1d_miss);

        // L2 lookup.
        let t_l2 = self.l2_port[core.0].serve(at);
        let t_l2 = t_l2.max(t_l1);
        if let Some(meta) = self.l2[core.0].lookup(line) {
            let state = meta.state;
            self.stats.inc(self.ids.l2_hit);
            let mut t = t_l2;
            if kind == AccessKind::Store && state != LineState::Modified {
                t = self.upgrade_for_store(core, line, t);
            }
            self.fill_private(core, line, kind);
            return AccessOutcome {
                complete: t,
                level: HitLevel::L2,
            };
        }
        self.stats.inc(self.ids.l2_miss);

        // LLC: traverse interconnect to the home slice.
        let slice = self.home_slice(line);
        let wire = Cycles(2 * self.hops(core, slice) * self.cfg.hop_latency.0);
        let t_llc = self.slice_port[slice.0].serve(t_l2 + wire);

        let (present, locked_until, dirty_owner, sharers) = self.llc_probe(slice, line);
        if present {
            self.stats.inc(self.ids.llc_hit);
            let mut t = t_llc;
            let mut level = HitLevel::Llc;

            // HALO lock bit: stores must wait for the lock to clear.
            let _ = locked_until;
            if kind == AccessKind::Store {
                if let Some(rel) = self.prune_lock(line, t) {
                    self.stats.inc(self.ids.store_lock_retry);
                    t = rel + Cycles(4); // re-issued snoop-invalidate
                }
            }

            // Dirty in a remote private cache: core-to-core transfer.
            if let Some(owner) = dirty_owner {
                if owner != core {
                    self.stats.inc(self.ids.llc_dirty_snoop);
                    t += self.cfg.dirty_snoop_latency;
                    level = HitLevel::LlcRemoteDirty;
                    self.downgrade_owner(owner, line);
                }
            }

            if kind == AccessKind::Store && sharers != 0 {
                t = self.invalidate_other_sharers(core, line, slice, t);
            }
            self.llc_note_access(slice, line, core, kind);
            self.fill_private(core, line, kind);
            return AccessOutcome { complete: t, level };
        }
        self.stats.inc(self.ids.llc_miss);

        // DRAM.
        let chan = (line.0 ^ (line.0 >> 9)) as usize;
        let t_dram = self.dram.serve(chan, t_llc);
        self.stats.inc(self.ids.dram_access);
        self.llc_install(slice, line, core, kind);
        self.fill_private(core, line, kind);
        AccessOutcome {
            complete: t_dram,
            level: HitLevel::Dram,
        }
    }

    /// Performs a dependent chain of timed accesses: each op issues at
    /// the previous op's completion cycle (the first at `at`). Appends
    /// one outcome per op to `out` and returns the completion cycle of
    /// the last op (`at` when `ops` is empty).
    ///
    /// Produces exactly the outcomes and statistics of the equivalent
    /// scalar loop
    ///
    /// ```ignore
    /// for &(a, k) in ops { t = sys.access(core, a, k, t).complete; }
    /// ```
    ///
    /// but hoists per-access dispatch overhead (core bounds check, stat
    /// handle resolution) out of the inner loop.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_batch(
        &mut self,
        core: CoreId,
        ops: &[(Addr, AccessKind)],
        at: Cycle,
        out: &mut Vec<AccessOutcome>,
    ) -> Cycle {
        assert!(core.0 < self.cfg.cores, "core out of range");
        out.reserve(ops.len());
        let mut t = at;
        for &(addr, kind) in ops {
            let o = self.access(core, addr, kind, t);
            t = o.complete;
            out.push(o);
        }
        t
    }

    /// A coherence-neutral snapshot read (the `SNAPSHOT_READ` instruction):
    /// reads the line wherever it is *without* changing any ownership
    /// state and without filling private caches, so the line stays put in
    /// the LLC for the accelerator to keep writing results into.
    pub fn snapshot_read(&mut self, core: CoreId, addr: Addr, at: Cycle) -> AccessOutcome {
        let out = self.snapshot_read_untraced(core, addr, at);
        if self.tracer.is_enabled() {
            self.tracer.span("mem", "snapshot_read", at, out.complete);
        }
        out
    }

    fn snapshot_read_untraced(&mut self, core: CoreId, addr: Addr, at: Cycle) -> AccessOutcome {
        let line = addr.line();
        self.stats.inc(self.ids.mem_snapshot_read);
        // L1 hit still possible and fastest.
        let t_l1 = self.l1_port[core.0].serve(line.0 as usize, at);
        if self.l1d[core.0].peek(line).is_some() {
            return AccessOutcome {
                complete: t_l1,
                level: HitLevel::L1,
            };
        }
        if self.l2[core.0].peek(line).is_some() {
            let t = self.l2_port[core.0].serve(at).max(t_l1);
            return AccessOutcome {
                complete: t,
                level: HitLevel::L2,
            };
        }
        let slice = self.home_slice(line);
        let wire = Cycles(2 * self.hops(core, slice) * self.cfg.hop_latency.0);
        let t_llc = self.slice_port[slice.0].serve(at + self.cfg.l2_latency + wire);
        if self.llc[slice.0].peek(line).is_some() {
            // No sharer update, no private fill: ownership unchanged.
            return AccessOutcome {
                complete: t_llc,
                level: HitLevel::Llc,
            };
        }
        let chan = (line.0 ^ (line.0 >> 9)) as usize;
        let t_dram = self.dram.serve(chan, t_llc);
        self.llc_install_untracked(slice, line);
        AccessOutcome {
            complete: t_dram,
            level: HitLevel::Dram,
        }
    }

    // ------------------------------------------------------------------
    // Accelerator-initiated accesses (from a CHA)
    // ------------------------------------------------------------------

    /// Performs a timed access issued by the accelerator attached to
    /// `slice`'s CHA. Near-cache accesses to the local slice skip the
    /// core-side interconnect round trip entirely.
    pub fn accel_access(
        &mut self,
        from: SliceId,
        addr: Addr,
        kind: AccessKind,
        at: Cycle,
    ) -> AccessOutcome {
        let out = self.accel_access_untraced(from, addr, kind, at);
        if self.tracer.is_enabled() {
            self.tracer
                .span("mem", accel_level_op(out.level), at, out.complete);
        }
        out
    }

    fn accel_access_untraced(
        &mut self,
        from: SliceId,
        addr: Addr,
        kind: AccessKind,
        at: Cycle,
    ) -> AccessOutcome {
        let line = addr.line();
        self.stats.inc(self.ids.accel_access);
        let home = self.home_slice(line);
        let t_arr = if home == from {
            // Local slice: short CHA-internal path (no interconnect
            // round trip), still subject to slice-port occupancy.
            self.slice_port[home.0].serve_with_latency(at, self.cfg.accel_local_latency)
        } else {
            // CHA-to-CHA transfer: the request rides the ring to the
            // home CHA and the data rides back, but both stay on the
            // uncore fast path (no core-side queueing), so the array
            // access itself is the short CHA-internal one.
            let wire = Cycles(self.hops_slice(from, home) * self.cfg.hop_latency.0);
            self.slice_port[home.0].serve_with_latency(at + wire, self.cfg.accel_local_latency)
        };

        let (present, _locked, dirty_owner, sharers) = self.llc_probe(home, line);
        if present {
            self.stats.inc(self.ids.accel_llc_hit);
            let mut t = t_arr;
            let mut level = HitLevel::Llc;
            if let Some(owner) = dirty_owner {
                self.stats.inc(self.ids.llc_dirty_snoop);
                t += self.cfg.dirty_snoop_latency;
                level = HitLevel::LlcRemoteDirty;
                self.downgrade_owner(owner, line);
            }
            if kind == AccessKind::Store && sharers != 0 {
                // Invalidate core copies before the accelerator writes.
                t = self.invalidate_all_sharers(line, home, t);
            }
            if kind == AccessKind::Store {
                if let Some(meta) = self.llc[home.0].peek_mut(line) {
                    meta.state = LineState::Modified;
                }
            }
            return AccessOutcome { complete: t, level };
        }
        self.stats.inc(self.ids.accel_llc_miss);
        let chan = (line.0 ^ (line.0 >> 9)) as usize;
        let t_dram = self.dram.serve(chan, t_arr);
        self.llc_install_untracked(home, line);
        if kind == AccessKind::Store {
            if let Some(meta) = self.llc[home.0].peek_mut(line) {
                meta.state = LineState::Modified;
            }
        }
        AccessOutcome {
            complete: t_dram,
            level: HitLevel::Dram,
        }
    }

    // ------------------------------------------------------------------
    // HALO hardware lock bits
    // ------------------------------------------------------------------

    /// Sets the hardware lock bit on `line` until `until`. Overlapping
    /// locks extend the release time.
    pub fn hw_lock(&mut self, line: LineAddr, until: Cycle) {
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.locked = true;
        }
        self.locks.insert_max(line, until);
        self.stats.inc(self.ids.hw_lock_set);
    }

    /// Clears the lock bit if its release time has passed.
    /// Allocation-free: expired entries are swept out of the lock table
    /// in place.
    pub fn hw_unlock_expired(&mut self, now: Cycle) {
        let llc = &mut self.llc;
        let slices = self.cfg.slices;
        self.locks.sweep_expired(now, |line| {
            if let Some(meta) = llc[slice_hash(line, slices).0].peek_mut(line) {
                meta.locked = false;
            }
        });
    }

    /// Returns the release time of the lock on `line`, if held.
    #[must_use]
    pub fn lock_release(&self, line: LineAddr) -> Option<Cycle> {
        self.locks.get(line)
    }

    // ------------------------------------------------------------------
    // Placement / warm-up helpers for experiments
    // ------------------------------------------------------------------

    /// Installs the line containing `addr` into the LLC (untimed), as a
    /// warm-up convenience.
    pub fn warm_llc(&mut self, addr: Addr) {
        let line = addr.line();
        let slice = self.home_slice(line);
        if self.llc[slice.0].peek(line).is_none() {
            self.llc_install_untracked(slice, line);
        }
    }

    /// Installs the line containing `addr` into `core`'s private caches
    /// and the LLC (untimed warm-up).
    pub fn warm_private(&mut self, core: CoreId, addr: Addr) {
        self.warm_llc(addr);
        let line = addr.line();
        if self.l2[core.0].peek(line).is_none() {
            let ev = self.l2[core.0].insert(line, LineState::Shared);
            self.handle_private_eviction(core, ev);
        }
        if self.l1d[core.0].peek(line).is_none() {
            let ev = self.l1d[core.0].insert(line, LineState::Shared);
            self.handle_private_eviction(core, ev);
        }
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.sharers |= 1 << core.0;
        }
    }

    /// Models a DDIO packet delivery: the NIC DMA-writes the line
    /// containing `addr` directly into the LLC (Intel Data Direct I/O),
    /// invalidating any stale private-cache copies. Untimed: DMA happens
    /// off the critical path.
    pub fn dma_write(&mut self, addr: Addr) {
        let line = addr.line();
        for c in 0..self.cfg.cores {
            self.l1d[c].invalidate(line);
            self.l2[c].invalidate(line);
        }
        let slice = self.home_slice(line);
        if self.llc[slice.0].peek(line).is_none() {
            self.llc_install_untracked(slice, line);
        }
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.state = LineState::Modified;
            meta.sharers = 0;
        }
        self.stats.inc(self.ids.dma_write);
    }

    /// Drops every line from `core`'s private caches. Sharer masks in the
    /// directory are left conservatively stale (see
    /// `handle_private_eviction`); the dirty-owner probe re-checks private
    /// tags, so correctness is unaffected.
    pub fn flush_private(&mut self, core: CoreId) {
        self.l1d[core.0].clear();
        self.l2[core.0].clear();
        self.stats.inc(self.ids.flush_private);
    }

    /// Drops all cached state everywhere (data is unaffected).
    pub fn flush_all(&mut self) {
        for c in &mut self.l1d {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        for c in &mut self.llc {
            c.clear();
        }
        self.locks.clear();
    }

    /// Fraction of `core`'s L1D currently valid.
    #[must_use]
    pub fn l1_occupancy(&self, core: CoreId) -> f64 {
        let c = &self.l1d[core.0];
        c.resident() as f64 / c.capacity_lines() as f64
    }

    /// Hit/miss counters of one core's L1D.
    #[must_use]
    pub fn l1_hit_miss(&self, core: CoreId) -> (u64, u64) {
        (self.l1d[core.0].hits(), self.l1d[core.0].misses())
    }

    /// Whether the line containing `addr` is present in any LLC slice.
    #[must_use]
    pub fn in_llc(&self, addr: Addr) -> bool {
        let line = addr.line();
        self.llc[self.home_slice(line).0].peek(line).is_some()
    }

    /// Whether the line containing `addr` is in `core`'s L1D.
    #[must_use]
    pub fn in_l1(&self, core: CoreId, addr: Addr) -> bool {
        self.l1d[core.0].peek(addr.line()).is_some()
    }

    // ------------------------------------------------------------------
    // Audit and fault-injection hooks (halo-check)
    // ------------------------------------------------------------------

    /// Lines resident in `core`'s L1D (audit walk; no side effects).
    pub fn l1_lines(&self, core: CoreId) -> impl Iterator<Item = &crate::cache::LineMeta> + '_ {
        self.l1d[core.0].iter_lines()
    }

    /// Lines resident in `core`'s L2 (audit walk; no side effects).
    pub fn l2_lines(&self, core: CoreId) -> impl Iterator<Item = &crate::cache::LineMeta> + '_ {
        self.l2[core.0].iter_lines()
    }

    /// Lines resident in one LLC slice (audit walk; no side effects).
    pub fn llc_slice_lines(
        &self,
        slice: SliceId,
    ) -> impl Iterator<Item = &crate::cache::LineMeta> + '_ {
        self.llc[slice.0].iter_lines()
    }

    /// Currently held hardware locks as `(line, release cycle)` pairs.
    pub fn held_locks(&self) -> impl Iterator<Item = (LineAddr, Cycle)> + '_ {
        self.locks.iter()
    }

    /// Forcibly evicts the line containing `addr` from the LLC and every
    /// private cache, releasing any hardware lock on it — the
    /// adversarial-eviction hook used by the `halo-check` fault injector.
    /// Bookkeeping matches a natural capacity eviction (back-invalidation
    /// plus lock release); data in [`SimMemory`] is untouched.
    pub fn force_evict(&mut self, addr: Addr) {
        let line = addr.line();
        for c in 0..self.cfg.cores {
            self.l1d[c].invalidate(line);
            self.l2[c].invalidate(line);
        }
        let slice = self.home_slice(line);
        self.llc[slice.0].invalidate(line);
        self.locks.remove(line);
        self.stats.inc(self.ids.fault_force_evict);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Drops the lock on `line` if it has expired by `now`, clearing the
    /// cache-line lock bit. Returns the still-active release time, if any.
    fn prune_lock(&mut self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        match self.locks.get(line) {
            Some(rel) if rel <= now => {
                self.locks.remove(line);
                let slice = self.home_slice(line);
                if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                    meta.locked = false;
                }
                None
            }
            other => other,
        }
    }

    /// Probe the LLC directory: (present, lock release, dirty private
    /// owner, sharer mask).
    fn llc_probe(
        &mut self,
        slice: SliceId,
        line: LineAddr,
    ) -> (bool, Option<Cycle>, Option<CoreId>, u64) {
        let locked_until = self.locks.get(line);
        let Some(meta) = self.llc[slice.0].lookup(line) else {
            return (false, locked_until, None, 0);
        };
        let sharers = meta.sharers;
        // Find a private dirty owner: a sharer whose L1/L2 holds Modified.
        let mut dirty_owner = None;
        for c in 0..self.cfg.cores {
            if sharers & (1 << c) != 0 {
                let m1 = self.l1d[c].peek(line).map(|m| m.state);
                let m2 = self.l2[c].peek(line).map(|m| m.state);
                if m1 == Some(LineState::Modified) || m2 == Some(LineState::Modified) {
                    dirty_owner = Some(CoreId(c));
                    break;
                }
            }
        }
        (true, locked_until, dirty_owner, sharers)
    }

    fn llc_note_access(&mut self, slice: SliceId, line: LineAddr, core: CoreId, kind: AccessKind) {
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            match kind {
                AccessKind::Load => meta.sharers |= 1 << core.0,
                AccessKind::Store => {
                    meta.sharers = 1 << core.0;
                    meta.state = LineState::Modified;
                }
            }
        }
    }

    fn llc_install(&mut self, slice: SliceId, line: LineAddr, core: CoreId, kind: AccessKind) {
        let state = match kind {
            AccessKind::Load => LineState::Shared,
            AccessKind::Store => LineState::Modified,
        };
        let ev = self.llc[slice.0].insert(line, state);
        self.handle_llc_eviction(ev);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.sharers = 1 << core.0;
        }
    }

    fn llc_install_untracked(&mut self, slice: SliceId, line: LineAddr) {
        let ev = self.llc[slice.0].insert(line, LineState::Shared);
        self.handle_llc_eviction(ev);
    }

    fn handle_llc_eviction(&mut self, ev: Eviction) {
        let victim = match ev {
            Eviction::None => return,
            Eviction::Clean(l) => l,
            Eviction::Dirty(l) => {
                self.stats.inc(self.ids.llc_writeback);
                l
            }
        };
        // Inclusive LLC: back-invalidate private copies.
        let mut invalidated = false;
        for c in 0..self.cfg.cores {
            if self.l1d[c].invalidate(victim).is_some() {
                invalidated = true;
            }
            if self.l2[c].invalidate(victim).is_some() {
                invalidated = true;
            }
        }
        if invalidated {
            self.stats.inc(self.ids.llc_back_inval);
        }
        self.locks.remove(victim);
    }

    fn fill_private(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) {
        let state = match kind {
            AccessKind::Load => LineState::Shared,
            AccessKind::Store => LineState::Modified,
        };
        if self.l2[core.0].peek(line).is_none() {
            let ev = self.l2[core.0].insert(line, state);
            self.handle_private_eviction(core, ev);
        } else if kind == AccessKind::Store {
            if let Some(m) = self.l2[core.0].peek_mut(line) {
                m.state = LineState::Modified;
            }
        }
        if self.l1d[core.0].peek(line).is_none() {
            let ev = self.l1d[core.0].insert(line, state);
            self.handle_private_eviction(core, ev);
        } else if kind == AccessKind::Store {
            if let Some(m) = self.l1d[core.0].peek_mut(line) {
                m.state = LineState::Modified;
            }
        }
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.sharers |= 1 << core.0;
        }
    }

    fn handle_private_eviction(&mut self, _core: CoreId, ev: Eviction) {
        match ev {
            Eviction::None | Eviction::Clean(_) => {}
            Eviction::Dirty(l) => {
                self.stats.inc(self.ids.private_writeback);
                // Data stays authoritative in SimMemory; mark LLC dirty.
                let slice = self.home_slice(l);
                if let Some(meta) = self.llc[slice.0].peek_mut(l) {
                    meta.state = LineState::Modified;
                }
            }
        }
        // NOTE: sharer masks are left conservatively stale on clean
        // private evictions (real directories are also imprecise); the
        // dirty-owner probe re-checks private tags, so correctness holds.
    }

    fn touch_private_store(&mut self, core: CoreId, line: LineAddr) {
        if let Some(m) = self.l1d[core.0].peek_mut(line) {
            m.state = LineState::Modified;
        }
        if let Some(m) = self.l2[core.0].peek_mut(line) {
            m.state = LineState::Modified;
        }
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.state = LineState::Modified;
            meta.sharers |= 1 << core.0;
        }
    }

    /// Store upgrade from a non-exclusive private copy: consult the
    /// directory and invalidate other sharers.
    fn upgrade_for_store(&mut self, core: CoreId, line: LineAddr, at: Cycle) -> Cycle {
        let slice = self.home_slice(line);
        let wire = Cycles(2 * self.hops(core, slice) * self.cfg.hop_latency.0);
        let t = at + wire + Cycles(self.cfg.llc_latency.0 / 2);
        // Lock bit check on upgrade as well.
        let t = match self.prune_lock(line, t) {
            Some(rel) => {
                self.stats.inc(self.ids.store_lock_retry);
                rel + Cycles(4)
            }
            None => t,
        };
        self.invalidate_other_sharers(core, line, slice, t)
    }

    fn invalidate_other_sharers(
        &mut self,
        core: CoreId,
        line: LineAddr,
        slice: SliceId,
        at: Cycle,
    ) -> Cycle {
        let Some(meta) = self.llc[slice.0].peek_mut(line) else {
            return at;
        };
        let others = meta.sharers & !(1 << core.0);
        meta.sharers = 1 << core.0;
        meta.state = LineState::Modified;
        if others == 0 {
            return at;
        }
        self.stats.inc(self.ids.coherence_invalidation);
        let mut t = at;
        for c in 0..self.cfg.cores {
            if others & (1 << c) != 0 {
                self.l1d[c].invalidate(line);
                self.l2[c].invalidate(line);
                let d = Cycles(self.hops(CoreId(c), slice) * self.cfg.hop_latency.0 * 2);
                t = t.max(at + d);
            }
        }
        t
    }

    fn invalidate_all_sharers(&mut self, line: LineAddr, slice: SliceId, at: Cycle) -> Cycle {
        let Some(meta) = self.llc[slice.0].peek_mut(line) else {
            return at;
        };
        let sharers = meta.sharers;
        meta.sharers = 0;
        if sharers == 0 {
            return at;
        }
        self.stats.inc(self.ids.coherence_invalidation);
        let mut t = at;
        for c in 0..self.cfg.cores {
            if sharers & (1 << c) != 0 {
                self.l1d[c].invalidate(line);
                self.l2[c].invalidate(line);
                let d = Cycles(self.hops(CoreId(c), slice) * self.cfg.hop_latency.0 * 2);
                t = t.max(at + d);
            }
        }
        t
    }

    fn downgrade_owner(&mut self, owner: CoreId, line: LineAddr) {
        if let Some(m) = self.l1d[owner.0].peek_mut(line) {
            m.state = LineState::Shared;
        }
        if let Some(m) = self.l2[owner.0].peek_mut(line) {
            m.state = LineState::Shared;
        }
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.state = LineState::Modified; // LLC now holds latest data
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineConfig::small())
    }

    #[test]
    fn cold_miss_goes_to_dram_then_l1() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        let first = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        assert_eq!(first.level, HitLevel::Dram);
        let second = s.access(CoreId(0), a, AccessKind::Load, first.complete);
        assert_eq!(second.level, HitLevel::L1);
        assert!(second.complete - first.complete <= Cycles(8));
    }

    #[test]
    fn llc_hit_after_warm() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        s.warm_llc(a);
        let out = s.access(CoreId(1), a, AccessKind::Load, Cycle(0));
        assert_eq!(out.level, HitLevel::Llc);
        assert!(s.in_l1(CoreId(1), a), "refill should populate L1");
    }

    #[test]
    fn remote_dirty_costs_core_to_core_transfer() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        // Core 0 writes the line, making it Modified in its private cache.
        let w = s.access(CoreId(0), a, AccessKind::Store, Cycle(0));
        // Core 1 then reads it: must pay the dirty-snoop penalty.
        let r = s.access(CoreId(1), a, AccessKind::Load, w.complete);
        assert_eq!(r.level, HitLevel::LlcRemoteDirty);
        assert!(
            (r.complete - w.complete).0 >= s.config().dirty_snoop_latency.0,
            "dirty transfer under-priced"
        );
    }

    #[test]
    fn accel_local_access_is_faster_than_core_access() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        s.warm_llc(a);
        let line = a.line();
        let home = s.home_slice(line);
        let accel = s.accel_access(home, a, AccessKind::Load, Cycle(0));
        s.flush_all();
        let mut s2 = sys();
        let a2 = s2.data_mut().alloc(64, 64);
        s2.warm_llc(a2);
        let core = s2.access(CoreId(0), a2, AccessKind::Load, Cycle(0));
        assert!(
            accel.complete < core.complete,
            "near-cache access {:?} should beat core access {:?}",
            accel.complete,
            core.complete
        );
    }

    #[test]
    fn hw_lock_delays_store() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        s.warm_llc(a);
        s.hw_lock(a.line(), Cycle(500));
        let w = s.access(CoreId(0), a, AccessKind::Store, Cycle(0));
        assert!(w.complete >= Cycle(500), "store must wait for lock");
        assert_eq!(s.stats().counter("store.lock_retry"), 1);
    }

    #[test]
    fn hw_lock_expires() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        s.warm_llc(a);
        s.hw_lock(a.line(), Cycle(100));
        s.hw_unlock_expired(Cycle(101));
        assert!(s.lock_release(a.line()).is_none());
        let w = s.access(CoreId(0), a, AccessKind::Store, Cycle(200));
        assert_eq!(s.stats().counter("store.lock_retry"), 0);
        assert!(w.complete < Cycle(500));
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        let r0 = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        let _r1 = s.access(CoreId(1), a, AccessKind::Load, r0.complete);
        assert!(s.in_l1(CoreId(1), a));
        let w = s.access(CoreId(0), a, AccessKind::Store, Cycle(10_000));
        let _ = w;
        assert!(!s.in_l1(CoreId(1), a), "sharer copy must be invalidated");
    }

    #[test]
    fn snapshot_read_does_not_fill_private() {
        let mut s = sys();
        let a = s.data_mut().alloc(64, 64);
        s.warm_llc(a);
        let out = s.snapshot_read(CoreId(0), a, Cycle(0));
        assert_eq!(out.level, HitLevel::Llc);
        assert!(!s.in_l1(CoreId(0), a), "snapshot must not pollute L1");
        assert!(s.in_llc(a), "line must stay in LLC");
    }

    #[test]
    fn working_set_larger_than_l1_misses() {
        let mut s = sys();
        let l1_cap = s.config().l1d.capacity;
        let n = (l1_cap / 64) * 4; // 4x L1 capacity in lines
        let base = s.data_mut().alloc(n * 64, 64);
        // Two passes; second pass should still miss L1 heavily.
        let mut t = Cycle(0);
        for pass in 0..2 {
            for i in 0..n {
                let out = s.access(CoreId(0), base + i * 64, AccessKind::Load, t);
                t = out.complete;
            }
            if pass == 0 {
                s.clear_stats();
            }
        }
        let (h, m) = (s.stats().counter("l1d.hit"), s.stats().counter("l1d.miss"));
        assert!(
            m > h,
            "thrashing working set should mostly miss L1: {h} hits {m} misses"
        );
    }

    #[test]
    fn dram_when_llc_overflows() {
        let mut s = sys();
        let llc_cap = s.config().llc_capacity();
        let n = (llc_cap / 64) * 2;
        let base = s.data_mut().alloc(n * 64, 64);
        let mut t = Cycle(0);
        for i in 0..n {
            let out = s.access(CoreId(0), base + i * 64, AccessKind::Load, t);
            t = out.complete;
        }
        s.clear_stats();
        // Re-stream: most accesses must reach DRAM again.
        let mut dram = 0u64;
        for i in 0..n {
            let out = s.access(CoreId(0), base + i * 64, AccessKind::Load, t);
            t = out.complete;
            if out.level == HitLevel::Dram {
                dram += 1;
            }
        }
        assert!(dram > n / 2, "streaming 2x LLC should hit DRAM: {dram}/{n}");
    }

    #[test]
    fn dma_write_places_line_in_llc_and_invalidates_private() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        // Core 0 caches the line privately.
        let r = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        assert!(s.in_l1(CoreId(0), a));
        // NIC delivers fresh packet data.
        s.dma_write(a);
        assert!(!s.in_l1(CoreId(0), a), "stale private copy must go");
        assert!(s.in_llc(a), "DDIO places the line in the LLC");
        assert_eq!(s.stats().counter("dma.write"), 1);
        let _ = r;
    }

    #[test]
    fn snapshot_read_from_dram_installs_in_llc_only() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        let out = s.snapshot_read(CoreId(0), a, Cycle(0));
        assert_eq!(out.level, HitLevel::Dram);
        assert!(s.in_llc(a));
        assert!(!s.in_l1(CoreId(0), a));
        // Second snapshot hits the LLC.
        let out2 = s.snapshot_read(CoreId(0), a, out.complete);
        assert_eq!(out2.level, HitLevel::Llc);
    }

    #[test]
    fn snapshot_read_prefers_private_copies() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        let r = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        let out = s.snapshot_read(CoreId(0), a, r.complete);
        assert_eq!(out.level, HitLevel::L1);
    }

    #[test]
    fn flush_private_forces_llc_reload() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        let r = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        s.flush_private(CoreId(0));
        assert!(!s.in_l1(CoreId(0), a));
        let r2 = s.access(CoreId(0), a, AccessKind::Load, r.complete);
        assert!(r2.level == HitLevel::Llc || r2.level == HitLevel::LlcRemoteDirty);
    }

    #[test]
    fn accel_store_makes_llc_line_modified_and_invalidates_sharers() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        let r = s.access(CoreId(1), a, AccessKind::Load, Cycle(0));
        assert!(s.in_l1(CoreId(1), a));
        let home = s.home_slice(a.line());
        let w = s.accel_access(home, a, AccessKind::Store, r.complete);
        assert!(w.complete > r.complete);
        assert!(
            !s.in_l1(CoreId(1), a),
            "accelerator store must invalidate core copies"
        );
    }

    #[test]
    fn l1_occupancy_reports_fill() {
        let mut s = sys();
        assert_eq!(s.l1_occupancy(CoreId(0)), 0.0);
        let base = s.data_mut().alloc_lines(64 * 16);
        let mut t = Cycle(0);
        for i in 0..16u64 {
            t = s
                .access(CoreId(0), base + i * 64, AccessKind::Load, t)
                .complete;
        }
        assert!(s.l1_occupancy(CoreId(0)) > 0.0);
    }

    #[test]
    fn clear_stats_preserves_cache_contents() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        s.clear_stats();
        assert_eq!(s.stats().counter("l1d.miss"), 0);
        assert!(s.in_l1(CoreId(0), a), "contents must survive stat reset");
    }

    #[test]
    fn slice_hash_spreads_lines() {
        let s = sys();
        let mut counts = vec![0u32; s.config().slices];
        for i in 0..4096u64 {
            counts[s.home_slice(LineAddr(i)).0] += 1;
        }
        for &c in &counts {
            assert!(c > 512 && c < 1536, "imbalanced slice hash: {c}");
        }
    }

    #[test]
    fn force_evict_clears_all_levels_and_locks() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        s.data_mut().write_u64(a, 0xDEAD);
        s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        s.hw_lock(a.line(), Cycle(1_000_000));
        assert!(s.in_l1(CoreId(0), a) && s.in_llc(a));
        s.force_evict(a);
        assert!(!s.in_l1(CoreId(0), a), "private copy must go");
        assert!(!s.in_llc(a), "LLC copy must go");
        assert!(s.lock_release(a.line()).is_none(), "lock must release");
        assert_eq!(s.held_locks().count(), 0);
        // Data survives: the next access refills from DRAM.
        assert_eq!(s.data_mut().read_u64(a), 0xDEAD);
        let r = s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        assert_eq!(r.level, HitLevel::Dram);
    }

    #[test]
    fn audit_walks_see_resident_lines() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        s.access(CoreId(2), a, AccessKind::Store, Cycle(0));
        let line = a.line();
        assert!(s.l1_lines(CoreId(2)).any(|m| m.line == line));
        assert!(s.l2_lines(CoreId(2)).any(|m| m.line == line));
        let home = s.home_slice(line);
        assert!(s.llc_slice_lines(home).any(|m| m.line == line));
        // The walk is side-effect free: counters unchanged.
        let (h, m) = s.l1_hit_miss(CoreId(2));
        let _ = s.l1_lines(CoreId(2)).count();
        assert_eq!((h, m), s.l1_hit_miss(CoreId(2)));
    }

    #[test]
    fn tracing_is_off_by_default_and_attributes_hit_levels() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        s.access(CoreId(0), a, AccessKind::Load, Cycle(0));
        assert!(!s.trace_enabled());
        assert!(s.tracer().is_empty(), "no spans while tracing is off");

        s.enable_tracing(1024);
        let warm = s.access(CoreId(0), a, AccessKind::Load, Cycle(100));
        assert_eq!(warm.level, HitLevel::L1);
        let h = s.tracer().histogram("mem", "l1").expect("l1 span class");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), (warm.complete - Cycle(100)).0);

        let b = s.data_mut().alloc_lines(64);
        let cold = s.access(CoreId(0), b, AccessKind::Load, warm.complete);
        assert_eq!(cold.level, HitLevel::Dram);
        assert_eq!(s.tracer().histogram("mem", "dram").unwrap().count(), 1);

        // Snapshot reads and accelerator accesses get their own classes.
        let c = s.data_mut().alloc_lines(64);
        s.warm_llc(c);
        s.snapshot_read(CoreId(1), c, Cycle(0));
        assert_eq!(
            s.tracer()
                .histogram("mem", "snapshot_read")
                .unwrap()
                .count(),
            1
        );
        let home = s.home_slice(c.line());
        s.accel_access(home, c, AccessKind::Load, Cycle(0));
        assert_eq!(s.tracer().histogram("mem", "accel_llc").unwrap().count(), 1);

        // The exporter sees every span recorded above.
        let json = s.tracer().to_chrome_trace();
        assert!(json.contains("\"name\":\"snapshot_read\""));
        assert!(json.contains("\"name\":\"accel_llc\""));
    }

    #[test]
    fn hops_symmetric_and_bounded() {
        let s = sys();
        let n = s.config().slices;
        for c in 0..s.config().cores {
            for sl in 0..n {
                let h = s.hops(CoreId(c), SliceId(sl));
                assert!(h <= (n / 2) as u64);
            }
        }
        assert_eq!(s.hops(CoreId(0), SliceId(0)), 0);
    }
}
