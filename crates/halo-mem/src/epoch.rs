//! Deterministic epoch/window parallel execution of the memory system.
//!
//! The classic [`MemorySystem`] interleaves all simulated cores on one
//! host thread. This module shards it so simulated cores can run on real
//! OS threads inside a bounded cycle window (an *epoch*) and still
//! produce output byte-identical to the single-threaded run of the same
//! epoch schedule (DESIGN.md §13):
//!
//! * [`MemorySystem::epoch_split`] hands each core an [`EpochCore`]: an
//!   exclusive `&mut` view of that core's private L1/L2 and ports, a
//!   frozen shared snapshot of the LLC directory ([`LlcView`]) and data
//!   store, and a line-granular copy-on-write overlay ([`CowMem`]) for
//!   its writes.
//! * Inside the window each core runs freely; every observable effect on
//!   shared state (LLC/directory transitions, dirty writebacks) is
//!   recorded as an [`LlcEvent`] instead of applied.
//! * At the barrier, [`MemorySystem::epoch_merge`] replays each core's
//!   event log and flushes each core's memory delta against the master
//!   state **in fixed core order**, single-threaded.
//!
//! A core's window is therefore a pure function of (frozen snapshot,
//! its own private state, its inputs); the thread pool only chooses
//! *which host thread* evaluates each pure function, so any thread count
//! yields the same bytes.
//!
//! The traits [`MemCtx`] (byte-addressed backing store: real
//! [`SimMemory`] or a [`CowMem`] overlay) and [`CoreMem`] (the surface
//! the simulated-core model needs: timed access + data + config) are the
//! seams that let `halo-cpu`/`halo-datapath` run unchanged against
//! either the classic system or an epoch shard.

use crate::addr::{Addr, CoreId, LineAddr, SliceId, CACHE_LINE};
use crate::cache::{CacheArray, Eviction, LineMeta, LineState};
use crate::config::MachineConfig;
use crate::memory::SimMemory;
use crate::system::{slice_hash, AccessKind, AccessOutcome, HitLevel, MemStatIds, MemorySystem};
use halo_sim::{BankedResource, Cycle, Cycles, Resource, Stats};
use std::collections::{HashMap, HashSet};

/// A byte-addressed backing store: the seam between table/EMC code and
/// whether it runs against the real [`SimMemory`] or a per-core
/// [`CowMem`] overlay inside an epoch window.
pub trait MemCtx {
    /// Reads `buf.len()` bytes starting at `addr`.
    fn read_bytes(&self, addr: Addr, buf: &mut [u8]);
    /// Writes `data` starting at `addr`.
    fn write_bytes(&mut self, addr: Addr, data: &[u8]);

    /// Reads a little-endian `u64`.
    fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }
    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
    /// Reads a little-endian `u32`.
    fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }
    /// Writes a little-endian `u32`.
    fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
    /// Reads a little-endian `u16`.
    fn read_u16(&self, addr: Addr) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }
    /// Writes a little-endian `u16`.
    fn write_u16(&mut self, addr: Addr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
    /// Reads one byte.
    fn read_u8(&self, addr: Addr) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }
    /// Writes one byte.
    fn write_u8(&mut self, addr: Addr, v: u8) {
        self.write_bytes(addr, &[v]);
    }
}

impl MemCtx for SimMemory {
    fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        SimMemory::read_bytes(self, addr, buf);
    }
    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        SimMemory::write_bytes(self, addr, data);
    }
}

/// A line-granular copy-on-write overlay over a frozen [`SimMemory`].
///
/// Reads fall through to the base for untouched lines; the first write
/// to a line copies it into the private delta. At the epoch barrier the
/// delta is flushed to the master store in sorted line order
/// ([`CowMem::into_sorted_delta`]), so the flush order is independent of
/// the order the core produced the writes in.
#[derive(Debug)]
pub struct CowMem<'a> {
    base: &'a SimMemory,
    delta: HashMap<u64, [u8; CACHE_LINE as usize]>,
}

impl<'a> CowMem<'a> {
    /// Creates an empty overlay over `base`.
    #[must_use]
    pub fn new(base: &'a SimMemory) -> Self {
        CowMem {
            base,
            delta: HashMap::new(),
        }
    }

    /// The frozen base store.
    #[must_use]
    pub fn base(&self) -> &'a SimMemory {
        self.base
    }

    /// Number of lines copied into the private delta.
    #[must_use]
    pub fn dirty_lines(&self) -> usize {
        self.delta.len()
    }

    /// Consumes the overlay, returning its dirty lines sorted by line
    /// index (deterministic flush order for the barrier merge).
    #[must_use]
    pub fn into_sorted_delta(self) -> Vec<(u64, [u8; CACHE_LINE as usize])> {
        let mut v: Vec<_> = self.delta.into_iter().collect();
        v.sort_unstable_by_key(|&(line, _)| line);
        v
    }
}

impl MemCtx for CowMem<'_> {
    fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < buf.len() {
            let off = (pos % CACHE_LINE) as usize;
            let n = (CACHE_LINE as usize - off).min(buf.len() - done);
            match self.delta.get(&(pos / CACHE_LINE)) {
                Some(line) => buf[done..done + n].copy_from_slice(&line[off..off + n]),
                None => self.base.read_bytes(Addr(pos), &mut buf[done..done + n]),
            }
            pos += n as u64;
            done += n;
        }
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        let base = self.base;
        let mut pos = addr.0;
        let mut done = 0usize;
        while done < data.len() {
            let off = (pos % CACHE_LINE) as usize;
            let n = (CACHE_LINE as usize - off).min(data.len() - done);
            let line = self.delta.entry(pos / CACHE_LINE).or_insert_with(|| {
                let mut b = [0u8; CACHE_LINE as usize];
                base.read_bytes(Addr((pos / CACHE_LINE) * CACHE_LINE), &mut b);
                b
            });
            line[off..off + n].copy_from_slice(&data[done..done + n]);
            pos += n as u64;
            done += n;
        }
    }
}

/// The memory-system surface the simulated core model executes against:
/// implemented by the classic [`MemorySystem`] and by a per-thread
/// [`EpochCore`] shard.
pub trait CoreMem {
    /// The byte store functional reads/writes go through.
    type Data: MemCtx;

    /// Mutable access to the byte store (untimed functional access).
    fn data_mut(&mut self) -> &mut Self::Data;
    /// The frozen master store (epoch mode) or the live store (classic):
    /// read-only structures shared across cores within a window.
    fn base(&self) -> &SimMemory;
    /// The machine configuration.
    fn config(&self) -> &MachineConfig;
    /// Performs a timed access from `core`.
    fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind, at: Cycle) -> AccessOutcome;
    /// Whether span tracing is on (always off inside epoch shards).
    fn trace_enabled(&self) -> bool;
    /// Records a span on behalf of a component (no-op when disabled).
    fn trace_span(&mut self, component: &'static str, op: &'static str, start: Cycle, end: Cycle);
}

impl CoreMem for MemorySystem {
    type Data = SimMemory;

    fn data_mut(&mut self) -> &mut SimMemory {
        MemorySystem::data_mut(self)
    }
    fn base(&self) -> &SimMemory {
        self.data()
    }
    fn config(&self) -> &MachineConfig {
        MemorySystem::config(self)
    }
    fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind, at: Cycle) -> AccessOutcome {
        MemorySystem::access(self, core, addr, kind, at)
    }
    fn trace_enabled(&self) -> bool {
        MemorySystem::trace_enabled(self)
    }
    fn trace_span(&mut self, component: &'static str, op: &'static str, start: Cycle, end: Cycle) {
        MemorySystem::trace_span(self, component, op, start, end);
    }
}

/// One deferred effect on shared LLC/directory state, recorded inside a
/// window and replayed against the master at the barrier.
#[derive(Debug, Clone, Copy)]
enum LlcEvent {
    /// Private store hit on an already-Modified line: home meta becomes
    /// Modified with this core added to the sharer set.
    Touch(LineAddr),
    /// Store upgrade from a non-exclusive private copy: other sharers'
    /// private copies are invalidated; home meta becomes exclusively
    /// this core's, Modified.
    Upgrade(LineAddr),
    /// Private refill from an L2 hit: this core joins the sharer set.
    FillSharer(LineAddr),
    /// A full LLC walk (L2 miss): replayed as a master lookup with the
    /// classic hit/miss transitions (install + eviction on miss,
    /// dirty-owner downgrade + sharer updates on hit).
    Access(LineAddr, AccessKind),
    /// A dirty private-cache eviction wrote the line back: home meta
    /// becomes Modified.
    DirtyWb(LineAddr),
}

/// A frozen snapshot of the LLC directory plus a window-local overlay.
///
/// Probes consult the overlay first, then `peek` the frozen base arrays
/// (no LRU perturbation). The overlay models no capacity or eviction —
/// within one window the LLC is treated as unbounded; real install and
/// eviction happen at replay (a documented, deterministic deviation).
#[derive(Debug)]
struct LlcView<'a> {
    base: &'a [CacheArray],
    slices: usize,
    overlay: HashMap<u64, LineMeta>,
    /// Lines whose remote dirty owner was already charged (and logically
    /// downgraded) within this window.
    snooped: HashSet<u64>,
}

impl<'a> LlcView<'a> {
    fn new(base: &'a [CacheArray], slices: usize) -> Self {
        LlcView {
            base,
            slices,
            overlay: HashMap::new(),
            snooped: HashSet::new(),
        }
    }

    /// Current metadata of `line` as this window sees it.
    fn probe(&self, line: LineAddr) -> Option<LineMeta> {
        if let Some(m) = self.overlay.get(&line.0) {
            return Some(m.clone());
        }
        let slice = slice_hash(line, self.slices);
        self.base[slice.0].peek(line).cloned()
    }

    /// Mutable overlay entry for `line`, copied from the frozen base on
    /// first touch; `None` if the line is resident nowhere.
    fn entry(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        if !self.overlay.contains_key(&line.0) {
            let slice = slice_hash(line, self.slices);
            let m = self.base[slice.0].peek(line)?.clone();
            self.overlay.insert(line.0, m);
        }
        self.overlay.get_mut(&line.0)
    }

    /// Installs `line` into the overlay (window-local LLC fill).
    fn install(&mut self, line: LineAddr, core: CoreId, kind: AccessKind) {
        let state = match kind {
            AccessKind::Load => LineState::Shared,
            AccessKind::Store => LineState::Modified,
        };
        self.overlay.insert(
            line.0,
            LineMeta {
                line,
                state,
                lru: 0,
                sharers: 1 << core.0,
                locked: false,
                accel_cv: false,
            },
        );
    }
}

/// The per-core state handed to a worker thread for one epoch window:
/// exclusive private caches and ports, cloned contention-free uncore
/// ports, the frozen LLC view, a [`CowMem`] overlay, and the event log.
///
/// Produced by [`MemorySystem::epoch_split`]; turn into a
/// [`WindowOutcome`] with [`EpochCore::finish`] once the window's work
/// is done.
#[derive(Debug)]
pub struct EpochCore<'a> {
    core: CoreId,
    cfg: &'a MachineConfig,
    mem: CowMem<'a>,
    l1d: &'a mut CacheArray,
    l2: &'a mut CacheArray,
    l1_port: &'a mut BankedResource,
    l2_port: &'a mut Resource,
    /// Window-local clones: slice-port and DRAM contention from other
    /// cores is not modeled *within* a window (documented deviation; the
    /// clone is discarded at the barrier).
    slice_port: Vec<Resource>,
    dram: BankedResource,
    llc: LlcView<'a>,
    stats: Stats,
    ids: MemStatIds,
    events: Vec<LlcEvent>,
}

/// Everything a window produced, detached from the borrows of the
/// [`MemorySystem`]: the event log, the memory delta, and the stat
/// deltas. Collect these after the thread scope ends and feed them to
/// [`MemorySystem::epoch_merge`].
#[derive(Debug)]
pub struct WindowOutcome {
    core: CoreId,
    events: Vec<LlcEvent>,
    delta: Vec<(u64, [u8; CACHE_LINE as usize])>,
    stats: Stats,
}

impl WindowOutcome {
    /// The simulated core this outcome belongs to.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }
}

impl EpochCore<'_> {
    /// The simulated core this shard executes.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Detaches the window's observable effects for the barrier merge.
    #[must_use]
    pub fn finish(self) -> WindowOutcome {
        WindowOutcome {
            core: self.core,
            events: self.events,
            delta: self.mem.into_sorted_delta(),
            stats: self.stats,
        }
    }

    fn hops(&self, core: CoreId, slice: SliceId) -> u64 {
        let n = self.cfg.slices;
        let a = core.0 % n;
        let b = slice.0;
        let d = a.abs_diff(b);
        d.min(n - d) as u64
    }

    /// Timed access inside the window. Mirrors the classic
    /// `MemorySystem::access` timing formulas exactly, but consults the
    /// frozen LLC view for shared state and defers every shared-state
    /// transition to the event log.
    fn window_access(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        at: Cycle,
    ) -> AccessOutcome {
        debug_assert_eq!(core, self.core, "epoch shard driven by a foreign core");
        let line = addr.line();
        match kind {
            AccessKind::Load => self.stats.inc(self.ids.mem_load),
            AccessKind::Store => self.stats.inc(self.ids.mem_store),
        }

        // L1 lookup (real, exclusive array).
        let t_l1 = self.l1_port.serve(line.0 as usize, at);
        if let Some(meta) = self.l1d.lookup(line) {
            let state = meta.state;
            self.stats.inc(self.ids.l1d_hit);
            if kind == AccessKind::Store && state != LineState::Modified {
                let t = self.upgrade_for_store(line, t_l1);
                self.touch_private_store(line);
                self.events.push(LlcEvent::Upgrade(line));
                self.events.push(LlcEvent::Touch(line));
                return AccessOutcome {
                    complete: t,
                    level: HitLevel::L1,
                };
            }
            if kind == AccessKind::Store {
                self.touch_private_store(line);
                self.events.push(LlcEvent::Touch(line));
            }
            return AccessOutcome {
                complete: t_l1,
                level: HitLevel::L1,
            };
        }
        self.stats.inc(self.ids.l1d_miss);

        // L2 lookup (real, exclusive array).
        let t_l2 = self.l2_port.serve(at).max(t_l1);
        if let Some(meta) = self.l2.lookup(line) {
            let state = meta.state;
            self.stats.inc(self.ids.l2_hit);
            let mut t = t_l2;
            if kind == AccessKind::Store && state != LineState::Modified {
                t = self.upgrade_for_store(line, t);
                self.events.push(LlcEvent::Upgrade(line));
            } else {
                self.events.push(match kind {
                    AccessKind::Load => LlcEvent::FillSharer(line),
                    AccessKind::Store => LlcEvent::Touch(line),
                });
                if kind == AccessKind::Store {
                    self.view_touch_store(line);
                } else {
                    self.view_fill_sharer(line);
                }
            }
            self.fill_private(line, kind);
            return AccessOutcome {
                complete: t,
                level: HitLevel::L2,
            };
        }
        self.stats.inc(self.ids.l2_miss);

        // LLC walk against the frozen view.
        let slice = slice_hash(line, self.cfg.slices);
        let wire = Cycles(2 * self.hops(core, slice) * self.cfg.hop_latency.0);
        let t_llc = self.slice_port[slice.0].serve(t_l2 + wire);

        if let Some(m) = self.llc.probe(line) {
            self.stats.inc(self.ids.llc_hit);
            let mut t = t_llc;
            let mut level = HitLevel::Llc;

            // Remote dirty owner, as the frozen view sees it: the home
            // meta is Modified and some other core shares the line. The
            // classic path probes the other cores' live private tags;
            // those are unreachable from this shard, so the directory
            // itself stands in (documented deviation — the replay uses
            // the real tags for the master transition).
            let others = m.sharers & !(1 << core.0);
            if m.state == LineState::Modified && others != 0 && !self.llc.snooped.contains(&line.0)
            {
                self.stats.inc(self.ids.llc_dirty_snoop);
                t += self.cfg.dirty_snoop_latency;
                level = HitLevel::LlcRemoteDirty;
                self.llc.snooped.insert(line.0);
            }

            if kind == AccessKind::Store && m.sharers != 0 {
                t = self.invalidate_other_sharers_timing(line, slice, t, m.sharers);
            }
            // Window-local directory transition mirroring llc_note_access.
            if let Some(meta) = self.llc.entry(line) {
                match kind {
                    AccessKind::Load => meta.sharers |= 1 << core.0,
                    AccessKind::Store => {
                        meta.sharers = 1 << core.0;
                        meta.state = LineState::Modified;
                    }
                }
            }
            self.fill_private(line, kind);
            self.events.push(LlcEvent::Access(line, kind));
            return AccessOutcome { complete: t, level };
        }
        self.stats.inc(self.ids.llc_miss);

        // DRAM (window-local channel clone).
        let chan = (line.0 ^ (line.0 >> 9)) as usize;
        let t_dram = self.dram.serve(chan, t_llc);
        self.stats.inc(self.ids.dram_access);
        self.llc.install(line, core, kind);
        self.fill_private(line, kind);
        self.events.push(LlcEvent::Access(line, kind));
        AccessOutcome {
            complete: t_dram,
            level: HitLevel::Dram,
        }
    }

    /// Store-upgrade timing against the frozen sharer mask (the lock
    /// table is asserted empty before a split, so the classic lock check
    /// is vacuous here).
    fn upgrade_for_store(&mut self, line: LineAddr, at: Cycle) -> Cycle {
        let slice = slice_hash(line, self.cfg.slices);
        let wire = Cycles(2 * self.hops(self.core, slice) * self.cfg.hop_latency.0);
        let t = at + wire + Cycles(self.cfg.llc_latency.0 / 2);
        let sharers = self.llc.probe(line).map_or(0, |m| m.sharers);
        let t = if sharers != 0 {
            self.invalidate_other_sharers_timing(line, slice, t, sharers)
        } else {
            t
        };
        if let Some(meta) = self.llc.entry(line) {
            meta.sharers = 1 << self.core.0;
            meta.state = LineState::Modified;
        }
        t
    }

    /// Timing (and stat) mirror of `invalidate_other_sharers`, computed
    /// from the view's sharer mask; the actual invalidations replay at
    /// the barrier.
    fn invalidate_other_sharers_timing(
        &mut self,
        line: LineAddr,
        slice: SliceId,
        at: Cycle,
        sharers: u64,
    ) -> Cycle {
        let others = sharers & !(1 << self.core.0);
        if let Some(meta) = self.llc.entry(line) {
            meta.sharers = 1 << self.core.0;
            meta.state = LineState::Modified;
        }
        if others == 0 {
            return at;
        }
        self.stats.inc(self.ids.coherence_invalidation);
        let mut t = at;
        for c in 0..self.cfg.cores {
            if others & (1 << c) != 0 {
                let d = Cycles(self.hops(CoreId(c), slice) * self.cfg.hop_latency.0 * 2);
                t = t.max(at + d);
            }
        }
        t
    }

    fn view_touch_store(&mut self, line: LineAddr) {
        if let Some(meta) = self.llc.entry(line) {
            meta.state = LineState::Modified;
            meta.sharers |= 1 << self.core.0;
        }
    }

    fn view_fill_sharer(&mut self, line: LineAddr) {
        if let Some(meta) = self.llc.entry(line) {
            meta.sharers |= 1 << self.core.0;
        }
    }

    fn touch_private_store(&mut self, line: LineAddr) {
        if let Some(m) = self.l1d.peek_mut(line) {
            m.state = LineState::Modified;
        }
        if let Some(m) = self.l2.peek_mut(line) {
            m.state = LineState::Modified;
        }
        self.view_touch_store(line);
    }

    fn fill_private(&mut self, line: LineAddr, kind: AccessKind) {
        let state = match kind {
            AccessKind::Load => LineState::Shared,
            AccessKind::Store => LineState::Modified,
        };
        if self.l2.peek(line).is_none() {
            let ev = self.l2.insert(line, state);
            self.handle_private_eviction(ev);
        } else if kind == AccessKind::Store {
            if let Some(m) = self.l2.peek_mut(line) {
                m.state = LineState::Modified;
            }
        }
        if self.l1d.peek(line).is_none() {
            let ev = self.l1d.insert(line, state);
            self.handle_private_eviction(ev);
        } else if kind == AccessKind::Store {
            if let Some(m) = self.l1d.peek_mut(line) {
                m.state = LineState::Modified;
            }
        }
        self.view_fill_sharer(line);
    }

    fn handle_private_eviction(&mut self, ev: Eviction) {
        match ev {
            Eviction::None | Eviction::Clean(_) => {}
            Eviction::Dirty(l) => {
                self.stats.inc(self.ids.private_writeback);
                if let Some(meta) = self.llc.entry(l) {
                    meta.state = LineState::Modified;
                }
                self.events.push(LlcEvent::DirtyWb(l));
            }
        }
    }
}

impl<'a> CoreMem for EpochCore<'a> {
    type Data = CowMem<'a>;

    fn data_mut(&mut self) -> &mut CowMem<'a> {
        &mut self.mem
    }
    fn base(&self) -> &SimMemory {
        self.mem.base()
    }
    fn config(&self) -> &MachineConfig {
        self.cfg
    }
    fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind, at: Cycle) -> AccessOutcome {
        self.window_access(core, addr, kind, at)
    }
    fn trace_enabled(&self) -> bool {
        false
    }
    fn trace_span(&mut self, _c: &'static str, _o: &'static str, _s: Cycle, _e: Cycle) {}
}

impl MemorySystem {
    /// Splits the system into one [`EpochCore`] shard per simulated core
    /// (the first `cores` of them) for one epoch window. Each shard
    /// borrows that core's private caches and ports exclusively and sees
    /// the LLC directory and data store frozen at this instant.
    ///
    /// Shards are [`Send`], so they can be moved into a
    /// [`std::thread::scope`]; while they live, the system itself is
    /// inaccessible (the borrow checker enforces the barrier).
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the configured core count, if tracing
    /// is enabled, or if hardware locks are held (epoch mode covers the
    /// software datapath only; callers fall back to the classic
    /// sequential path otherwise).
    pub fn epoch_split(&mut self, cores: usize) -> Vec<EpochCore<'_>> {
        assert!(cores <= self.cfg.cores, "core out of range");
        assert!(
            !self.tracer.is_enabled(),
            "epoch mode does not support span tracing"
        );
        assert!(
            self.locks.is_empty(),
            "epoch mode does not support in-flight hardware locks"
        );
        let cfg = &self.cfg;
        let mem = &self.mem;
        let llc = &self.llc[..];
        let ids = self.ids;
        let stats_proto = {
            let mut s = self.stats.clone();
            s.clear();
            s
        };
        let slice_port = self.slice_port.clone();
        let dram = self.dram.clone();
        self.l1d
            .iter_mut()
            .zip(self.l2.iter_mut())
            .zip(self.l1_port.iter_mut())
            .zip(self.l2_port.iter_mut())
            .take(cores)
            .enumerate()
            .map(|(i, (((l1d, l2), l1_port), l2_port))| EpochCore {
                core: CoreId(i),
                cfg,
                mem: CowMem::new(mem),
                l1d,
                l2,
                l1_port,
                l2_port,
                slice_port: slice_port.clone(),
                dram: dram.clone(),
                llc: LlcView::new(llc, cfg.slices),
                stats: stats_proto.clone(),
                ids,
                events: Vec::new(),
            })
            .collect()
    }

    /// Merges the outcomes of one epoch window back into the master
    /// state, replaying each core's event log and flushing its memory
    /// delta **in ascending core order**, single-threaded. Outcomes may
    /// arrive in any order; they are sorted here, so the merge result is
    /// independent of thread scheduling.
    pub fn epoch_merge(&mut self, mut outcomes: Vec<WindowOutcome>) {
        outcomes.sort_by_key(|o| o.core.0);
        for out in outcomes {
            for &ev in &out.events {
                self.replay(out.core, ev);
            }
            for (line, bytes) in out.delta {
                self.mem.write_bytes(Addr(line * CACHE_LINE), &bytes);
            }
            self.stats.merge(&out.stats);
        }
    }

    /// Applies one deferred shared-state transition to the master LLC
    /// and the *other* cores' private caches. All request-level stats
    /// were already counted inside the window; only eviction effects
    /// discovered here (writebacks, back-invalidations), which the
    /// window cannot see, are counted at replay — replay runs in fixed
    /// order, so the counts stay deterministic.
    fn replay(&mut self, core: CoreId, ev: LlcEvent) {
        match ev {
            LlcEvent::Touch(line) => {
                let slice = self.home_slice(line);
                if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                    meta.state = LineState::Modified;
                    meta.sharers |= 1 << core.0;
                }
            }
            LlcEvent::Upgrade(line) => {
                let slice = self.home_slice(line);
                let Some(meta) = self.llc[slice.0].peek_mut(line) else {
                    return;
                };
                let others = meta.sharers & !(1 << core.0);
                meta.sharers = 1 << core.0;
                meta.state = LineState::Modified;
                for c in 0..self.cfg.cores {
                    if others & (1 << c) != 0 {
                        self.l1d[c].invalidate(line);
                        self.l2[c].invalidate(line);
                    }
                }
            }
            LlcEvent::FillSharer(line) => {
                let slice = self.home_slice(line);
                if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                    meta.sharers |= 1 << core.0;
                }
            }
            LlcEvent::Access(line, kind) => self.replay_access(core, line, kind),
            LlcEvent::DirtyWb(line) => {
                let slice = self.home_slice(line);
                if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                    meta.state = LineState::Modified;
                }
            }
        }
    }

    /// Replays a full LLC walk: the classic hit/miss master transitions
    /// (LRU bump, dirty-owner downgrade against the real private tags,
    /// sharer updates, install + inclusive eviction on miss), without
    /// re-counting the request-level stats the window already counted.
    fn replay_access(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) {
        let slice = self.home_slice(line);
        if self.llc[slice.0].lookup(line).is_some() {
            let sharers = self.llc[slice.0].peek(line).map_or(0, |m| m.sharers);
            // Dirty-owner probe against the real private tags.
            let mut dirty_owner = None;
            for c in 0..self.cfg.cores {
                if sharers & (1 << c) != 0 {
                    let m1 = self.l1d[c].peek(line).map(|m| m.state);
                    let m2 = self.l2[c].peek(line).map(|m| m.state);
                    if m1 == Some(LineState::Modified) || m2 == Some(LineState::Modified) {
                        dirty_owner = Some(CoreId(c));
                        break;
                    }
                }
            }
            if let Some(owner) = dirty_owner {
                if owner != core {
                    self.downgrade_owner_master(owner, line);
                }
            }
            if kind == AccessKind::Store {
                let others = sharers & !(1 << core.0);
                for c in 0..self.cfg.cores {
                    if others & (1 << c) != 0 {
                        self.l1d[c].invalidate(line);
                        self.l2[c].invalidate(line);
                    }
                }
            }
            if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                match kind {
                    AccessKind::Load => meta.sharers |= 1 << core.0,
                    AccessKind::Store => {
                        meta.sharers = 1 << core.0;
                        meta.state = LineState::Modified;
                    }
                }
            }
        } else {
            let state = match kind {
                AccessKind::Load => LineState::Shared,
                AccessKind::Store => LineState::Modified,
            };
            let ev = self.llc[slice.0].insert(line, state);
            self.replay_llc_eviction(ev);
            if let Some(meta) = self.llc[slice.0].peek_mut(line) {
                meta.sharers = 1 << core.0;
            }
        }
    }

    fn downgrade_owner_master(&mut self, owner: CoreId, line: LineAddr) {
        if let Some(m) = self.l1d[owner.0].peek_mut(line) {
            m.state = LineState::Shared;
        }
        if let Some(m) = self.l2[owner.0].peek_mut(line) {
            m.state = LineState::Shared;
        }
        let slice = self.home_slice(line);
        if let Some(meta) = self.llc[slice.0].peek_mut(line) {
            meta.state = LineState::Modified;
        }
    }

    /// Inclusive-eviction handling at replay. Eviction stats are counted
    /// here (not in the window, which cannot observe master evictions);
    /// replay order is fixed, so the counts are thread-count-invariant.
    fn replay_llc_eviction(&mut self, ev: Eviction) {
        let victim = match ev {
            Eviction::None => return,
            Eviction::Clean(l) => l,
            Eviction::Dirty(l) => {
                self.stats.inc(self.ids.llc_writeback);
                l
            }
        };
        let mut invalidated = false;
        for c in 0..self.cfg.cores {
            if self.l1d[c].invalidate(victim).is_some() {
                invalidated = true;
            }
            if self.l2[c].invalidate(victim).is_some() {
                invalidated = true;
            }
        }
        if invalidated {
            self.stats.inc(self.ids.llc_back_inval);
        }
        self.locks.remove(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineConfig::small())
    }

    const fn assert_send<T: Send>() {}
    const _: () = assert_send::<EpochCore<'_>>();
    const _: () = assert_send::<WindowOutcome>();

    #[test]
    fn cow_mem_reads_through_and_overlays_writes() {
        let mut base = SimMemory::new();
        let a = base.alloc_lines(256);
        base.write_u64(a, 11);
        base.write_u64(a + 64, 22);
        let mut cow = CowMem::new(&base);
        assert_eq!(cow.read_u64(a), 11);
        cow.write_u64(a, 99);
        cow.write_u8(a + 70, 7);
        assert_eq!(cow.read_u64(a), 99, "write visible through overlay");
        assert_eq!(cow.read_u64(a + 64), 22 | (7 << 48), "partial-line CoW");
        assert_eq!(cow.dirty_lines(), 2);
        let delta = cow.into_sorted_delta();
        assert_eq!(delta.len(), 2);
        assert!(delta[0].0 < delta[1].0, "delta sorted by line");
        assert_eq!(base.read_u64(a), 11, "base untouched until merge");
    }

    #[test]
    fn cow_mem_crosses_line_boundaries() {
        let mut base = SimMemory::new();
        let a = base.alloc_lines(256);
        let mut cow = CowMem::new(&base);
        let data: Vec<u8> = (0..100u8).collect();
        cow.write_bytes(a + 30, &data);
        let mut back = vec![0u8; 100];
        cow.read_bytes(a + 30, &mut back);
        assert_eq!(back, data);
        assert_eq!(cow.dirty_lines(), 3, "spans three lines");
    }

    /// The invariant the whole scheme rests on: a window executed
    /// against a shard and merged equals the classic sequential
    /// execution for single-core traffic (where no cross-core
    /// interleaving exists to differ on).
    #[test]
    fn single_core_window_matches_classic_run() {
        let mk = |n: u64| {
            let mut s = sys();
            let base = s.data_mut().alloc_lines(64 * n);
            (s, base)
        };
        let n = 200u64;
        let (mut classic, base_a) = mk(n);
        let (mut epoch, base_b) = mk(n);
        assert_eq!(base_a, base_b);

        let mut t_classic = Cycle(0);
        for i in 0..n {
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            t_classic = classic
                .access(CoreId(0), base_a + (i % 50) * 64, kind, t_classic)
                .complete;
        }

        let mut t_epoch = Cycle(0);
        {
            let mut fleet = epoch.epoch_split(1);
            let shard = &mut fleet[0];
            for i in 0..n {
                let kind = if i % 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                t_epoch = shard
                    .window_access(CoreId(0), base_b + (i % 50) * 64, kind, t_epoch)
                    .complete;
            }
            let out: Vec<_> = fleet.into_iter().map(EpochCore::finish).collect();
            epoch.epoch_merge(out);
        }

        assert_eq!(t_classic, t_epoch, "single-core timing must be identical");
        for key in ["mem.load", "mem.store", "l1d.hit", "l1d.miss", "llc.miss"] {
            assert_eq!(
                classic.stats().counter(key),
                epoch.stats().counter(key),
                "counter {key}"
            );
        }
        // Master cache state converged identically.
        for i in 0..50u64 {
            let a = base_a + i * 64;
            assert_eq!(classic.in_l1(CoreId(0), a), epoch.in_l1(CoreId(0), a));
            assert_eq!(classic.in_llc(a), epoch.in_llc(a));
        }
    }

    /// Two cores, two threads vs. inline: the merged master state and
    /// stats must not depend on which host thread ran which shard.
    #[test]
    fn two_core_window_is_thread_invariant() {
        let run = |threaded: bool| -> (Vec<u64>, Vec<bool>) {
            let mut s = sys();
            let base = s.data_mut().alloc_lines(64 * 64);
            let mut fleet = s.epoch_split(2);
            let work = |shard: &mut EpochCore<'_>, salt: u64| {
                let core = shard.core();
                let mut t = Cycle(0);
                for i in 0..120u64 {
                    let kind = if (i + salt).is_multiple_of(4) {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    t = shard
                        .window_access(core, base + ((i * 7 + salt) % 40) * 64, kind, t)
                        .complete;
                }
            };
            if threaded {
                std::thread::scope(|scope| {
                    for (i, shard) in fleet.iter_mut().enumerate() {
                        scope.spawn(move || work(shard, i as u64));
                    }
                });
            } else {
                // Reverse order on purpose: merge must not care.
                for (i, shard) in fleet.iter_mut().enumerate().rev() {
                    work(shard, i as u64);
                }
            }
            let out: Vec<_> = fleet.into_iter().map(EpochCore::finish).collect();
            s.epoch_merge(out);
            let counters = [
                "mem.load",
                "mem.store",
                "l1d.hit",
                "llc.hit",
                "llc.miss",
                "dram.access",
                "coherence.invalidation",
            ]
            .iter()
            .map(|k| s.stats().counter(k))
            .collect();
            let residency = (0..40u64)
                .flat_map(|i| {
                    let a = base + i * 64;
                    [s.in_llc(a), s.in_l1(CoreId(0), a), s.in_l1(CoreId(1), a)]
                })
                .collect();
            (counters, residency)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn window_writes_reach_master_only_at_merge() {
        let mut s = sys();
        let a = s.data_mut().alloc_lines(64);
        s.data_mut().write_u64(a, 5);
        let mut fleet = s.epoch_split(1);
        fleet[0].data_mut().write_u64(a, 42);
        assert_eq!(fleet[0].data_mut().read_u64(a), 42);
        let out: Vec<_> = fleet.into_iter().map(EpochCore::finish).collect();
        s.epoch_merge(out);
        assert_eq!(s.data_mut().read_u64(a), 42);
    }
}
