//! Lightweight statistics collection: counters, ratios, and histograms.
//!
//! Every simulated component exposes its behaviour through a [`Stats`]
//! registry so that experiments can print the same quantities the paper
//! reports (misses per kilo-load, stall ratios, per-stage cycle
//! breakdowns) without touching component internals.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// An online mean/min/max accumulator over `f64` samples.
#[derive(Debug, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or +inf if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A string-keyed registry of counters and summaries.
///
/// Keys use `component.metric` dotted paths by convention, e.g.
/// `"l1d.miss"` or `"accel3.queries"`.
///
/// # Examples
///
/// ```
/// use halo_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.bump("l1d.hit");
/// stats.bump_by("l1d.miss", 3);
/// assert_eq!(stats.counter("l1d.miss"), 3);
/// assert!((stats.ratio("l1d.miss", "l1d.hit") - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: BTreeMap<String, Counter>,
    summaries: BTreeMap<String, Summary>,
}

impl Stats {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments counter `key` by one, creating it if absent.
    pub fn bump(&mut self, key: &str) {
        self.bump_by(key, 1);
    }

    /// Increments counter `key` by `n`, creating it if absent.
    pub fn bump_by(&mut self, key: &str, n: u64) {
        self.counters.entry_or_default(key).add(n);
    }

    /// Current value of counter `key` (0 if never bumped).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, |c| c.get())
    }

    /// Records a sample into summary `key`, creating it if absent.
    pub fn record(&mut self, key: &str, v: f64) {
        self.summaries.entry(key.to_owned()).or_default().record(v);
    }

    /// Returns summary `key`, if any samples were recorded.
    #[must_use]
    pub fn summary(&self, key: &str) -> Option<&Summary> {
        self.summaries.get(key)
    }

    /// Ratio of two counters; 0.0 when the denominator is zero.
    #[must_use]
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Misses per kilo-event: `1000 * miss / events` (the paper's MPKL
    /// metric when `events` counts retired loads).
    #[must_use]
    pub fn per_kilo(&self, num: &str, den: &str) -> f64 {
        1000.0 * self.ratio(num, den)
    }

    /// Merges another registry into this one (counters add, summaries
    /// concatenate).
    pub fn merge(&mut self, other: &Stats) {
        for (k, c) in &other.counters {
            self.counters.entry_or_default(k).add(c.get());
        }
        for (k, s) in &other.summaries {
            let dst = self.summaries.entry(k.clone()).or_default();
            dst.count += s.count;
            dst.sum += s.sum;
            dst.min = dst.min.min(s.min);
            dst.max = dst.max.max(s.max);
        }
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.summaries.clear();
    }
}

/// Extension trait sugar for `BTreeMap<String, Counter>`.
trait EntryOrDefault {
    fn entry_or_default(&mut self, key: &str) -> &mut Counter;
}

impl EntryOrDefault for BTreeMap<String, Counter> {
    fn entry_or_default(&mut self, key: &str) -> &mut Counter {
        if !self.contains_key(key) {
            self.insert(key.to_owned(), Counter::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, c) in &self.counters {
            writeln!(f, "{k} = {}", c.get())?;
        }
        for (k, s) in &self.summaries {
            writeln!(
                f,
                "{k} = mean {:.3} (n={}, min {:.3}, max {:.3})",
                s.mean(),
                s.count(),
                s.min(),
                s.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("a");
        s.bump_by("a", 4);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn summaries_track_extremes() {
        let mut s = Stats::new();
        s.record("lat", 4.0);
        s.record("lat", 10.0);
        let sum = s.summary("lat").unwrap();
        assert_eq!(sum.count(), 2);
        assert!((sum.mean() - 7.0).abs() < 1e-12);
        assert!((sum.min() - 4.0).abs() < 1e-12);
        assert!((sum.max() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let s = Stats::new();
        assert_eq!(s.ratio("x", "y"), 0.0);
    }

    #[test]
    fn per_kilo_matches_mpkl_definition() {
        let mut s = Stats::new();
        s.bump_by("llc.miss", 5);
        s.bump_by("loads", 1000);
        assert!((s.per_kilo("llc.miss", "loads") - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = Stats::new();
        a.bump_by("c", 2);
        a.record("m", 1.0);
        let mut b = Stats::new();
        b.bump_by("c", 3);
        b.record("m", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert!((a.summary("m").unwrap().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Stats::new();
        s.bump("k");
        assert!(s.to_string().contains("k = 1"));
    }
}
