//! Lightweight statistics collection: counters, ratios, and histograms.
//!
//! Every simulated component exposes its behaviour through a [`Stats`]
//! registry so that experiments can print the same quantities the paper
//! reports (misses per kilo-load, stall ratios, per-stage cycle
//! breakdowns) without touching component internals.
//!
//! # Hot-path interning
//!
//! String keys exist for registration and export only. Components on
//! the simulator's hot path register their counters once at
//! construction time ([`Stats::counter_id`] / [`Stats::summary_id`])
//! and bump them through dense [`StatId`] handles ([`Stats::inc`],
//! [`Stats::add_to`], [`Stats::record_to`]) — one bounds-checked array
//! index per event instead of a string-keyed tree walk. The string API
//! ([`Stats::bump`], [`Stats::record`]) remains for cold paths and
//! interns on first use, so both routes land in the same registry and
//! serialize identically (keys in lexicographic order).

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A pre-registered handle to one counter or summary in a [`Stats`]
/// registry: an index into the registry's dense value array.
///
/// Handles are only meaningful for the registry that issued them and
/// for registries [cloned](Clone) or [merged](Stats::merge) from it
/// (name registrations survive both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatId(pub u32);

/// An online mean/min/max accumulator over `f64` samples.
#[derive(Debug, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or +inf if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A registry of counters and summaries, string-keyed at the edges and
/// dense-indexed on the hot path.
///
/// Keys use `component.metric` dotted paths by convention, e.g.
/// `"l1d.miss"` or `"accel3.queries"`.
///
/// # Examples
///
/// ```
/// use halo_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.bump("l1d.hit");
/// stats.bump_by("l1d.miss", 3);
/// assert_eq!(stats.counter("l1d.miss"), 3);
/// assert!((stats.ratio("l1d.miss", "l1d.hit") - 3.0).abs() < 1e-12);
///
/// // Hot-path route: register once, bump through the handle.
/// let hit = stats.counter_id("l1d.hit");
/// stats.inc(hit);
/// assert_eq!(stats.counter("l1d.hit"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Counter name -> dense index. `BTreeMap` so export order is the
    /// lexicographic key order the old string-keyed registry had.
    counter_ids: BTreeMap<String, StatId>,
    counter_vals: Vec<u64>,
    summary_ids: BTreeMap<String, StatId>,
    summary_vals: Vec<Summary>,
}

impl Stats {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Stats::default()
    }

    // ------------------------------------------------------------------
    // Interned hot-path API
    // ------------------------------------------------------------------

    /// Registers (or finds) counter `key`, returning its dense handle.
    pub fn counter_id(&mut self, key: &str) -> StatId {
        if let Some(&id) = self.counter_ids.get(key) {
            return id;
        }
        let id = StatId(u32::try_from(self.counter_vals.len()).expect("counter registry full"));
        self.counter_vals.push(0);
        self.counter_ids.insert(key.to_owned(), id);
        id
    }

    /// Registers (or finds) summary `key`, returning its dense handle.
    pub fn summary_id(&mut self, key: &str) -> StatId {
        if let Some(&id) = self.summary_ids.get(key) {
            return id;
        }
        let id = StatId(u32::try_from(self.summary_vals.len()).expect("summary registry full"));
        self.summary_vals.push(Summary::new());
        self.summary_ids.insert(key.to_owned(), id);
        id
    }

    /// Increments the counter behind `id` by one.
    #[inline]
    pub fn inc(&mut self, id: StatId) {
        self.counter_vals[id.0 as usize] += 1;
    }

    /// Increments the counter behind `id` by `n`.
    #[inline]
    pub fn add_to(&mut self, id: StatId, n: u64) {
        self.counter_vals[id.0 as usize] += n;
    }

    /// Records a sample into the summary behind `id`.
    #[inline]
    pub fn record_to(&mut self, id: StatId, v: f64) {
        self.summary_vals[id.0 as usize].record(v);
    }

    /// Reads the counter behind `id`.
    #[must_use]
    #[inline]
    pub fn get(&self, id: StatId) -> u64 {
        self.counter_vals[id.0 as usize]
    }

    // ------------------------------------------------------------------
    // String-keyed API (cold paths, registration, export)
    // ------------------------------------------------------------------

    /// Increments counter `key` by one, creating it if absent.
    pub fn bump(&mut self, key: &str) {
        let id = self.counter_id(key);
        self.inc(id);
    }

    /// Increments counter `key` by `n`, creating it if absent.
    pub fn bump_by(&mut self, key: &str, n: u64) {
        let id = self.counter_id(key);
        self.add_to(id, n);
    }

    /// Current value of counter `key` (0 if never bumped).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counter_ids
            .get(key)
            .map_or(0, |&id| self.counter_vals[id.0 as usize])
    }

    /// Records a sample into summary `key`, creating it if absent.
    pub fn record(&mut self, key: &str, v: f64) {
        let id = self.summary_id(key);
        self.record_to(id, v);
    }

    /// Returns summary `key`, if any samples were recorded.
    #[must_use]
    pub fn summary(&self, key: &str) -> Option<&Summary> {
        self.summary_ids
            .get(key)
            .map(|&id| &self.summary_vals[id.0 as usize])
            .filter(|s| !s.is_empty())
    }

    /// Ratio of two counters; 0.0 when the denominator is zero.
    #[must_use]
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Misses per kilo-event: `1000 * miss / events` (the paper's MPKL
    /// metric when `events` counts retired loads).
    #[must_use]
    pub fn per_kilo(&self, num: &str, den: &str) -> f64 {
        1000.0 * self.ratio(num, den)
    }

    /// Merges another registry into this one (counters add, summaries
    /// concatenate). Keys are matched by name; a key is cloned only the
    /// first time this registry sees it.
    pub fn merge(&mut self, other: &Stats) {
        for (k, &oid) in &other.counter_ids {
            let v = other.counter_vals[oid.0 as usize];
            match self.counter_ids.get(k) {
                Some(&id) => self.counter_vals[id.0 as usize] += v,
                None => {
                    let id = self.counter_id(k);
                    self.counter_vals[id.0 as usize] = v;
                }
            }
        }
        for (k, &oid) in &other.summary_ids {
            let s = &other.summary_vals[oid.0 as usize];
            let id = match self.summary_ids.get(k) {
                Some(&id) => id,
                None => self.summary_id(k),
            };
            let dst = &mut self.summary_vals[id.0 as usize];
            dst.count += s.count;
            dst.sum += s.sum;
            dst.min = dst.min.min(s.min);
            dst.max = dst.max.max(s.max);
        }
    }

    /// Iterates over all nonzero counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_ids
            .iter()
            .map(|(k, &id)| (k.as_str(), self.counter_vals[id.0 as usize]))
            .filter(|&(_, v)| v != 0)
    }

    /// Zeroes every counter and summary. Name registrations (and the
    /// [`StatId`] handles components hold) stay valid, so hot-path
    /// components keep bumping the same slots after a reset.
    pub fn clear(&mut self) {
        for v in &mut self.counter_vals {
            *v = 0;
        }
        for s in &mut self.summary_vals {
            *s = Summary::new();
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never-bumped and cleared entries are skipped so registration
        // (which pre-creates zero slots) is invisible in the output.
        for (k, c) in self.counters() {
            writeln!(f, "{k} = {c}")?;
        }
        for (k, &id) in &self.summary_ids {
            let s = &self.summary_vals[id.0 as usize];
            if s.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{k} = mean {:.3} (n={}, min {:.3}, max {:.3})",
                s.mean(),
                s.count(),
                s.min(),
                s.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("a");
        s.bump_by("a", 4);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn interned_and_string_routes_share_slots() {
        let mut s = Stats::new();
        let id = s.counter_id("l1d.hit");
        s.inc(id);
        s.bump("l1d.hit");
        s.add_to(id, 3);
        assert_eq!(s.counter("l1d.hit"), 5);
        assert_eq!(s.get(id), 5);
        assert_eq!(s.counter_id("l1d.hit"), id, "re-registration is stable");
    }

    #[test]
    fn summaries_track_extremes() {
        let mut s = Stats::new();
        s.record("lat", 4.0);
        s.record("lat", 10.0);
        let sum = s.summary("lat").unwrap();
        assert_eq!(sum.count(), 2);
        assert!((sum.mean() - 7.0).abs() < 1e-12);
        assert!((sum.min() - 4.0).abs() < 1e-12);
        assert!((sum.max() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn interned_summary_route() {
        let mut s = Stats::new();
        let id = s.summary_id("lat");
        s.record_to(id, 2.0);
        s.record("lat", 4.0);
        assert!((s.summary("lat").unwrap().mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let s = Stats::new();
        assert_eq!(s.ratio("x", "y"), 0.0);
    }

    #[test]
    fn per_kilo_matches_mpkl_definition() {
        let mut s = Stats::new();
        s.bump_by("llc.miss", 5);
        s.bump_by("loads", 1000);
        assert!((s.per_kilo("llc.miss", "loads") - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = Stats::new();
        a.bump_by("c", 2);
        a.record("m", 1.0);
        let mut b = Stats::new();
        b.bump_by("c", 3);
        b.record("m", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert!((a.summary("m").unwrap().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_existing_handles() {
        let mut a = Stats::new();
        let id = a.counter_id("c");
        let mut b = Stats::new();
        b.bump_by("c", 3);
        b.bump("only_in_b");
        a.merge(&b);
        a.inc(id);
        assert_eq!(a.counter("c"), 4, "handle must survive a merge");
        assert_eq!(a.counter("only_in_b"), 1);
    }

    #[test]
    fn clear_keeps_registrations_valid() {
        let mut s = Stats::new();
        let id = s.counter_id("c");
        s.add_to(id, 7);
        s.record("m", 1.0);
        s.clear();
        assert_eq!(s.counter("c"), 0);
        assert!(s.summary("m").is_none(), "cleared summary must not export");
        s.inc(id);
        assert_eq!(s.counter("c"), 1, "handle must survive clear");
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Stats::new();
        s.bump("k");
        assert!(s.to_string().contains("k = 1"));
    }

    #[test]
    fn display_skips_zero_and_unused_slots() {
        let mut s = Stats::new();
        let _ = s.counter_id("registered_only");
        let _ = s.summary_id("sum_registered_only");
        s.bump("k");
        let out = s.to_string();
        assert!(out.contains("k = 1"));
        assert!(!out.contains("registered_only"));
        // Export order stays lexicographic regardless of registration
        // order.
        s.bump("a");
        let out = s.to_string();
        assert!(out.find("a = 1").unwrap() < out.find("k = 1").unwrap());
    }
}
