//! Multi-threaded experiment sweep runner.
//!
//! The paper's evaluation is a large set of *independent* simulation
//! points (table sizes × backends × core counts). Each point owns its
//! own simulated machine, so the sweep is embarrassingly parallel: this
//! module fans points out over OS threads through an `mpsc` work queue
//! and merges the rows back **in point order**, so the serialized
//! output of a parallel run is byte-identical to a sequential one.
//!
//! Determinism rules:
//!
//! * every point derives its RNG seed from the *experiment name and
//!   point index* via [`point_seed`] — never from thread identity or
//!   wall-clock time;
//! * progress and timing go to **stderr**; result rows are returned in
//!   submission order regardless of completion order.
//!
//! # Examples
//!
//! ```
//! use halo_sim::{point_seed, FnPoint, SweepRunner};
//!
//! let points: Vec<_> = (0..8u64)
//!     .map(|i| {
//!         let seed = point_seed("example", i);
//!         FnPoint::new(format!("point {i}"), move || seed.wrapping_mul(i))
//!     })
//!     .collect();
//! let seq = SweepRunner::new("example", 1).quiet().run(points);
//! assert_eq!(seq.len(), 8);
//! ```

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Derives the deterministic RNG seed of one sweep point from the
/// experiment name and the point's index within the sweep.
///
/// The name is folded with FNV-1a and the index advances the resulting
/// `SplitMix64` stream, so distinct experiments get decorrelated seed
/// sequences and nearby indices get statistically independent seeds.
/// The derivation involves neither thread identity nor time, so a
/// parallel sweep sees exactly the seeds a sequential one does.
///
/// # Examples
///
/// ```
/// use halo_sim::point_seed;
///
/// assert_eq!(point_seed("fig9", 0), point_seed("fig9", 0));
/// assert_ne!(point_seed("fig9", 0), point_seed("fig9", 1));
/// assert_ne!(point_seed("fig9", 0), point_seed("fig11", 0));
/// ```
#[must_use]
pub fn point_seed(experiment: &str, index: u64) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for &b in experiment.as_bytes() {
        acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Jump the SplitMix64 stream seeded by the name to its `index`-th
    // state (the state advances by the golden gamma per draw).
    crate::SplitMix64::new(acc.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// One independent unit of sweep work.
///
/// A point must be self-contained: it owns (or builds) its own
/// `MemorySystem`, tables, and RNG, and must not read global mutable
/// state, so that running points concurrently cannot change any row.
pub trait SweepPoint: Send {
    /// The result row this point produces.
    type Row: Send;

    /// Runs the point to completion.
    fn run(&self) -> Self::Row;

    /// Human-readable label for progress reporting.
    fn label(&self) -> String {
        String::new()
    }
}

/// A [`SweepPoint`] built from a closure, for experiments whose points
/// are more naturally expressed inline than as named structs.
pub struct FnPoint<F> {
    label: String,
    f: F,
}

impl<F> std::fmt::Debug for FnPoint<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnPoint")
            .field("label", &self.label)
            .finish()
    }
}

impl<F, R> FnPoint<F>
where
    F: Fn() -> R + Send,
    R: Send,
{
    /// Wraps `f` as a sweep point with the given progress label.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnPoint {
            label: label.into(),
            f,
        }
    }
}

impl<F, R> SweepPoint for FnPoint<F>
where
    F: Fn() -> R + Send,
    R: Send,
{
    type Row = R;

    fn run(&self) -> R {
        (self.f)()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Wall-clock accounting for one sweep run.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
    /// Per-point wall-clock times, in point order.
    pub per_point: Vec<Duration>,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl SweepTiming {
    /// Sum of per-point times (the sequential-equivalent work).
    #[must_use]
    pub fn cpu_time(&self) -> Duration {
        self.per_point.iter().sum()
    }
}

/// Environment variable overriding the worker-thread count.
pub const JOBS_ENV: &str = "HALO_JOBS";

/// Resolves the default worker count: `HALO_JOBS` if set and parseable,
/// otherwise the host's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Fans independent sweep points out over worker threads and merges
/// their rows back in submission order.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    name: String,
    jobs: usize,
    progress: bool,
}

impl SweepRunner {
    /// Creates a runner for the named experiment with an explicit
    /// worker count (`jobs == 1` runs inline with no threads).
    #[must_use]
    pub fn new(name: impl Into<String>, jobs: usize) -> Self {
        SweepRunner {
            name: name.into(),
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Creates a runner taking its worker count from [`default_jobs`]
    /// (the `HALO_JOBS` environment variable, then host parallelism).
    #[must_use]
    pub fn from_env(name: impl Into<String>) -> Self {
        let jobs = default_jobs();
        SweepRunner::new(name, jobs).progress(true)
    }

    /// Enables or disables per-point progress reporting on stderr.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Disables progress reporting (for tests and nested sweeps).
    #[must_use]
    pub fn quiet(self) -> Self {
        self.progress(false)
    }

    /// Worker threads this runner will use.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point and returns the rows in point order.
    pub fn run<P: SweepPoint>(&self, points: Vec<P>) -> Vec<P::Row> {
        self.run_timed(points).0
    }

    /// Runs every point, returning rows in point order plus wall-clock
    /// accounting.
    pub fn run_timed<P: SweepPoint>(&self, points: Vec<P>) -> (Vec<P::Row>, SweepTiming) {
        let n = points.len();
        let jobs = self.jobs.min(n.max(1));
        let sweep_start = Instant::now();
        let mut rows: Vec<Option<P::Row>> = Vec::with_capacity(n);
        rows.resize_with(n, || None);
        let mut times = vec![Duration::ZERO; n];

        if jobs <= 1 {
            for (i, p) in points.iter().enumerate() {
                let t0 = Instant::now();
                let row = p.run();
                let dt = t0.elapsed();
                self.report(i + 1, n, &p.label(), dt);
                rows[i] = Some(row);
                times[i] = dt;
            }
        } else {
            // Work queue: an mpsc channel pre-loaded with every point;
            // workers pull from it behind a mutex (the receiver is the
            // queue head) and push `(index, row)` results back.
            let (work_tx, work_rx) = mpsc::channel();
            for item in points.into_iter().enumerate() {
                work_tx.send(item).expect("queue open");
            }
            drop(work_tx);
            let work_rx = Mutex::new(work_rx);
            let (res_tx, res_rx) = mpsc::channel();
            std::thread::scope(|s| {
                for _ in 0..jobs {
                    let res_tx = res_tx.clone();
                    let work_rx = &work_rx;
                    s.spawn(move || loop {
                        let next = work_rx.lock().expect("queue lock").recv();
                        let Ok((i, p)) = next else { break };
                        let t0 = Instant::now();
                        let row = p.run();
                        let dt = t0.elapsed();
                        if res_tx.send((i, p.label(), row, dt)).is_err() {
                            break;
                        }
                    });
                }
                drop(res_tx);
                let mut done = 0usize;
                while let Ok((i, label, row, dt)) = res_rx.recv() {
                    done += 1;
                    self.report(done, n, &label, dt);
                    rows[i] = Some(row);
                    times[i] = dt;
                }
            });
        }

        let merged: Vec<P::Row> = rows
            .into_iter()
            .map(|r| r.expect("every point produced a row"))
            .collect();
        let timing = SweepTiming {
            wall: sweep_start.elapsed(),
            per_point: times,
            jobs,
        };
        if self.progress {
            eprintln!(
                "[{}] {} points in {:.2?} ({} jobs, {:.2?} cpu)",
                self.name,
                n,
                timing.wall,
                timing.jobs,
                timing.cpu_time()
            );
        }
        (merged, timing)
    }

    fn report(&self, done: usize, total: usize, label: &str, dt: Duration) {
        if self.progress {
            if label.is_empty() {
                eprintln!("[{} {done}/{total}] {dt:.2?}", self.name);
            } else {
                eprintln!("[{} {done}/{total}] {label} ({dt:.2?})", self.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_depends_on_name_and_index() {
        assert_eq!(point_seed("a", 7), point_seed("a", 7));
        assert_ne!(point_seed("a", 0), point_seed("a", 1));
        assert_ne!(point_seed("a", 0), point_seed("b", 0));
        // Seeds along one experiment form a pairwise-distinct sequence.
        let seeds: Vec<u64> = (0..64).map(|i| point_seed("exp", i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "seed collision");
    }

    #[test]
    fn ordered_merge_restores_point_order() {
        // Points finish in scrambled order (later points are cheaper),
        // but rows come back in submission order.
        let points: Vec<_> = (0..16u64)
            .map(|i| {
                FnPoint::new(format!("p{i}"), move || {
                    // Unequal work so completion order differs from
                    // submission order under parallel execution.
                    let mut acc = point_seed("order", i);
                    for _ in 0..(16 - i) * 5_000 {
                        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    }
                    (i, acc)
                })
            })
            .collect();
        let rows = SweepRunner::new("order", 4).quiet().run(points);
        for (i, &(idx, _)) in rows.iter().enumerate() {
            assert_eq!(i as u64, idx, "row {i} out of order");
        }
    }

    #[test]
    fn parallel_rows_match_sequential() {
        let mk = || {
            (0..12u64)
                .map(|i| {
                    FnPoint::new(String::new(), move || {
                        let mut rng = crate::SplitMix64::new(point_seed("par", i));
                        (0..100).fold(0u64, |a, _| a.wrapping_add(rng.next_u64()))
                    })
                })
                .collect::<Vec<_>>()
        };
        let seq = SweepRunner::new("par", 1).quiet().run(mk());
        let par = SweepRunner::new("par", 4).quiet().run(mk());
        assert_eq!(seq, par);
    }

    #[test]
    fn timing_counts_every_point() {
        let points: Vec<_> = (0..5u64)
            .map(|i| FnPoint::new(String::new(), move || i))
            .collect();
        let (rows, timing) = SweepRunner::new("t", 2).quiet().run_timed(points);
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
        assert_eq!(timing.per_point.len(), 5);
        assert_eq!(timing.jobs, 2);
        assert!(timing.wall >= Duration::ZERO);
    }

    #[test]
    fn jobs_resolution_prefers_env() {
        // Serialize with other env-reading tests by using a dedicated
        // runner rather than mutating the process environment here;
        // just check the clamp and default path.
        assert!(default_jobs() >= 1);
        assert_eq!(SweepRunner::new("x", 0).jobs(), 1);
    }
}
