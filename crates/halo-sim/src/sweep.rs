//! Multi-threaded experiment sweep runner.
//!
//! The paper's evaluation is a large set of *independent* simulation
//! points (table sizes × backends × core counts). Each point owns its
//! own simulated machine, so the sweep is embarrassingly parallel: this
//! module fans points out over OS threads through an `mpsc` work queue
//! and merges the rows back **in point order**, so the serialized
//! output of a parallel run is byte-identical to a sequential one.
//!
//! Determinism rules:
//!
//! * every point derives its RNG seed from the *experiment name and
//!   point index* via [`point_seed`] — never from thread identity or
//!   wall-clock time;
//! * progress and timing go to **stderr**; result rows are returned in
//!   submission order regardless of completion order.
//!
//! # Examples
//!
//! ```
//! use halo_sim::{point_seed, FnPoint, SweepRunner};
//!
//! let points: Vec<_> = (0..8u64)
//!     .map(|i| {
//!         let seed = point_seed("example", i);
//!         FnPoint::new(format!("point {i}"), move || seed.wrapping_mul(i))
//!     })
//!     .collect();
//! let seq = SweepRunner::new("example", 1).quiet().run(points);
//! assert_eq!(seq.len(), 8);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A task submitted to the persistent worker pool.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// A worker-thread body handed to the pool's spawn function.
type WorkerBody = Box<dyn FnOnce() + Send + 'static>;

/// The thread-spawning hook of [`WorkerPool::submit_with`]: takes the
/// worker's name and body, returns whether the OS actually created the
/// thread. Injectable so tests can force spawn failures.
type SpawnFn<'a> = &'a mut dyn FnMut(String, WorkerBody) -> std::io::Result<()>;

/// The process-wide persistent worker pool behind every parallel sweep.
///
/// Workers are spawned on first use and then parked on the shared task
/// queue between sweeps, so an experiment running dozens of sweeps pays
/// thread creation once per process instead of once per sweep. The pool
/// grows monotonically to the largest worker count any sweep has asked
/// for and never shrinks; parked workers cost only their stacks.
struct WorkerPool {
    task_tx: mpsc::Sender<PoolTask>,
    task_rx: Arc<Mutex<mpsc::Receiver<PoolTask>>>,
    /// Growth reservations: bumped via compare-exchange *before* the
    /// spawn attempt (so concurrent submitters don't over-spawn) and
    /// rolled back if the spawn fails.
    spawned: AtomicUsize,
    /// Workers whose spawn actually succeeded. Only this counter may
    /// gate enqueueing: a reservation is not a drainer.
    alive: AtomicUsize,
}

// Marks threads that belong to the pool, so a sweep started *from a
// pool worker* (a nested sweep) runs inline instead of submitting to
// the pool — every worker could be occupied by the outer sweep, and
// waiting on them from one of them would deadlock.
thread_local! {
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Peak number of sweep points observed executing simultaneously in
/// this process (see [`observed_parallelism`]).
static OBSERVED_ACTIVE: AtomicUsize = AtomicUsize::new(0);
static OBSERVED_PEAK: AtomicUsize = AtomicUsize::new(0);

/// The peak number of sweep points that have actually executed
/// simultaneously in this process, as opposed to the worker count a
/// sweep was *configured* with. Benchmarks record this next to the
/// host's parallelism so reported speedups can be sanity-checked
/// against what really ran concurrently.
#[must_use]
pub fn observed_parallelism() -> usize {
    OBSERVED_PEAK.load(Ordering::Relaxed)
}

/// A uniform record of how parallel a benchmark run really was: what
/// the host offers, what the run was configured with, and the peak
/// concurrency actually observed.
///
/// Every benchmark JSON document (`BENCH_sweep.json`,
/// `SCALE_flows.json`, `BENCH_parallel.json`) embeds the same three
/// fields through [`ParallelismReport::json_fields`], and every
/// wall-clock speedup assertion gates on
/// [`ParallelismReport::can_assert_speedup`]: shared CI runners often
/// expose a single core, where ~1.0x is the correct outcome, not a
/// failure — those hosts skip the assertion with a note instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelismReport {
    /// Cores the host OS reports available to this process.
    pub host: usize,
    /// Worker/thread count the parallel runs were configured with.
    pub jobs: usize,
    /// Peak number of sweep points observed executing simultaneously in
    /// this process (see [`observed_parallelism`]; 0 until a sweep has
    /// run — thread-pool runs that bypass the sweep runner leave it
    /// untouched).
    pub observed: usize,
}

impl ParallelismReport {
    /// Snapshots the host parallelism and the process-global observed
    /// peak next to the configured worker count.
    #[must_use]
    pub fn capture(jobs: usize) -> Self {
        ParallelismReport {
            host: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            jobs,
            observed: observed_parallelism(),
        }
    }

    /// Whether a wall-clock speedup assertion is meaningful: the host
    /// must offer at least `min_host` cores (floored at 2) and the
    /// parallel run must have been configured with at least two
    /// workers.
    #[must_use]
    pub fn can_assert_speedup(&self, min_host: usize) -> bool {
        self.host >= min_host.max(2) && self.jobs >= 2
    }

    /// One-line explanation for stderr when a speedup assertion is
    /// skipped.
    #[must_use]
    pub fn skip_note(&self) -> String {
        format!(
            "skipping speedup assertion (host parallelism {}, jobs {}, observed {}; \
             ~1.0x expected)",
            self.host, self.jobs, self.observed
        )
    }

    /// The shared parallelism header for benchmark JSON documents:
    /// `jobs`, `host_parallelism`, and `observed_parallelism`. Every
    /// field sits on a line containing `parallelism`, so
    /// jobs-invariance tests can strip the whole header — which varies
    /// with worker count and process history by design — with a single
    /// line filter.
    #[must_use]
    pub fn json_fields(&self) -> String {
        format!(
            "  \"jobs\": {}, \"host_parallelism\": {},\n  \"observed_parallelism\": {},\n",
            self.jobs, self.host, self.observed
        )
    }
}

/// Scope guard bumping the observed-concurrency counters around one
/// point's execution.
struct ActivePoint;

impl ActivePoint {
    fn enter() -> Self {
        let now = OBSERVED_ACTIVE.fetch_add(1, Ordering::Relaxed) + 1;
        OBSERVED_PEAK.fetch_max(now, Ordering::Relaxed);
        ActivePoint
    }
}

impl Drop for ActivePoint {
    fn drop(&mut self) {
        OBSERVED_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

impl WorkerPool {
    fn new() -> Self {
        let (task_tx, task_rx) = mpsc::channel();
        WorkerPool {
            task_tx,
            task_rx: Arc::new(Mutex::new(task_rx)),
            spawned: AtomicUsize::new(0),
            alive: AtomicUsize::new(0),
        }
    }

    fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Grows the pool to at least `want` workers, then enqueues `task`.
    fn submit(&self, want: usize, task: PoolTask) {
        self.submit_with(want, task, &mut |name, body| {
            std::thread::Builder::new()
                .name(name)
                .spawn(body)
                .map(|_| ())
        });
    }

    /// [`submit`](Self::submit) with an injectable thread spawner.
    ///
    /// The `spawned` counter is reserved optimistically via
    /// compare-exchange (so concurrent submitters don't over-spawn), but
    /// a reservation whose `spawn` call then fails is **rolled back** —
    /// otherwise the pool would believe workers exist that don't, and a
    /// later sweep would enqueue work no thread ever drains and wait on
    /// its result channel forever. If after the growth attempt the pool
    /// has no workers at all, `task` runs inline on the caller's thread
    /// instead of being enqueued (same no-stranded-work argument).
    fn submit_with(&self, want: usize, task: PoolTask, spawn: SpawnFn<'_>) {
        let mut cur = self.spawned.load(Ordering::Relaxed);
        while cur < want {
            match self.spawned.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let rx = Arc::clone(&self.task_rx);
                    let body: WorkerBody = Box::new(move || {
                        IN_POOL_WORKER.with(|f| f.set(true));
                        loop {
                            // The lock guards only the queue pop; it is
                            // released before the task runs.
                            let next = rx.lock().expect("pool queue lock").recv();
                            let Ok(task) = next else { break };
                            task();
                        }
                    });
                    if spawn(format!("halo-sweep-{cur}"), body).is_err() {
                        // Roll back the optimistic reservation and stop
                        // growing: if one spawn failed (thread limit,
                        // out of memory), retrying immediately will too.
                        self.spawned.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                    self.alive.fetch_add(1, Ordering::Relaxed);
                    cur += 1;
                }
                Err(seen) => cur = seen,
            }
        }
        if self.alive.load(Ordering::Relaxed) == 0 {
            // Degraded mode: no worker exists and none could be spawned.
            // Run the task inline — enqueueing it would strand it (and
            // any result channel it holds) forever.
            task();
            return;
        }
        self.task_tx.send(task).expect("pool queue open");
    }
}

/// Derives the deterministic RNG seed of one sweep point from the
/// experiment name and the point's index within the sweep.
///
/// The name is folded with FNV-1a and the index advances the resulting
/// `SplitMix64` stream, so distinct experiments get decorrelated seed
/// sequences and nearby indices get statistically independent seeds.
/// The derivation involves neither thread identity nor time, so a
/// parallel sweep sees exactly the seeds a sequential one does.
///
/// # Examples
///
/// ```
/// use halo_sim::point_seed;
///
/// assert_eq!(point_seed("fig9", 0), point_seed("fig9", 0));
/// assert_ne!(point_seed("fig9", 0), point_seed("fig9", 1));
/// assert_ne!(point_seed("fig9", 0), point_seed("fig11", 0));
/// ```
#[must_use]
pub fn point_seed(experiment: &str, index: u64) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for &b in experiment.as_bytes() {
        acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Jump the SplitMix64 stream seeded by the name to its `index`-th
    // state (the state advances by the golden gamma per draw).
    crate::SplitMix64::new(acc.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// One independent unit of sweep work.
///
/// A point must be self-contained: it owns (or builds) its own
/// `MemorySystem`, tables, and RNG, and must not read global mutable
/// state, so that running points concurrently cannot change any row.
pub trait SweepPoint: Send {
    /// The result row this point produces.
    type Row: Send;

    /// Runs the point to completion.
    fn run(&self) -> Self::Row;

    /// Human-readable label for progress reporting.
    fn label(&self) -> String {
        String::new()
    }
}

/// A [`SweepPoint`] built from a closure, for experiments whose points
/// are more naturally expressed inline than as named structs.
pub struct FnPoint<F> {
    label: String,
    f: F,
}

impl<F> std::fmt::Debug for FnPoint<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnPoint")
            .field("label", &self.label)
            .finish()
    }
}

impl<F, R> FnPoint<F>
where
    F: Fn() -> R + Send,
    R: Send,
{
    /// Wraps `f` as a sweep point with the given progress label.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnPoint {
            label: label.into(),
            f,
        }
    }
}

impl<F, R> SweepPoint for FnPoint<F>
where
    F: Fn() -> R + Send,
    R: Send,
{
    type Row = R;

    fn run(&self) -> R {
        (self.f)()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Wall-clock accounting for one sweep run.
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
    /// Per-point wall-clock times, in point order.
    pub per_point: Vec<Duration>,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl SweepTiming {
    /// Sum of per-point times (the sequential-equivalent work).
    #[must_use]
    pub fn cpu_time(&self) -> Duration {
        self.per_point.iter().sum()
    }
}

/// Environment variable overriding the worker-thread count.
pub const JOBS_ENV: &str = "HALO_JOBS";

/// Resolves the default worker count: `HALO_JOBS` if set and parseable,
/// otherwise the host's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Fans independent sweep points out over worker threads and merges
/// their rows back in submission order.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    name: String,
    jobs: usize,
    progress: bool,
}

impl SweepRunner {
    /// Creates a runner for the named experiment with an explicit
    /// worker count (`jobs == 1` runs inline with no threads).
    #[must_use]
    pub fn new(name: impl Into<String>, jobs: usize) -> Self {
        SweepRunner {
            name: name.into(),
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Creates a runner taking its worker count from [`default_jobs`]
    /// (the `HALO_JOBS` environment variable, then host parallelism).
    #[must_use]
    pub fn from_env(name: impl Into<String>) -> Self {
        let jobs = default_jobs();
        SweepRunner::new(name, jobs).progress(true)
    }

    /// Enables or disables per-point progress reporting on stderr.
    #[must_use]
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Disables progress reporting (for tests and nested sweeps).
    #[must_use]
    pub fn quiet(self) -> Self {
        self.progress(false)
    }

    /// Worker threads this runner will use.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point and returns the rows in point order.
    pub fn run<P: SweepPoint + 'static>(&self, points: Vec<P>) -> Vec<P::Row>
    where
        P::Row: 'static,
    {
        self.run_timed(points).0
    }

    /// Runs every point, returning rows in point order plus wall-clock
    /// accounting. Parallel runs execute on the process-wide persistent
    /// worker pool; a sweep started from inside a pool worker (a nested
    /// sweep) runs inline to keep the pool deadlock-free.
    pub fn run_timed<P: SweepPoint + 'static>(&self, points: Vec<P>) -> (Vec<P::Row>, SweepTiming)
    where
        P::Row: 'static,
    {
        let n = points.len();
        let nested = IN_POOL_WORKER.with(std::cell::Cell::get);
        let jobs = if nested { 1 } else { self.jobs.min(n.max(1)) };
        let sweep_start = Instant::now();
        let mut rows: Vec<Option<P::Row>> = Vec::with_capacity(n);
        rows.resize_with(n, || None);
        let mut times = vec![Duration::ZERO; n];

        if jobs <= 1 {
            for (i, p) in points.iter().enumerate() {
                let t0 = Instant::now();
                let active = ActivePoint::enter();
                let row = p.run();
                drop(active);
                let dt = t0.elapsed();
                self.report(i + 1, n, &p.label(), dt);
                rows[i] = Some(row);
                times[i] = dt;
            }
        } else {
            // Work queue: an mpsc channel pre-loaded with every point.
            // `jobs` drain tasks go to the persistent pool; each pulls
            // points from this run's queue behind a mutex (the receiver
            // is the queue head) and pushes `(index, row)` results back.
            let (work_tx, work_rx) = mpsc::channel();
            for item in points.into_iter().enumerate() {
                work_tx.send(item).expect("queue open");
            }
            drop(work_tx);
            let work_rx = Arc::new(Mutex::new(work_rx));
            let (res_tx, res_rx) = mpsc::channel();
            let pool = WorkerPool::global();
            for _ in 0..jobs {
                let work_rx = Arc::clone(&work_rx);
                let res_tx = res_tx.clone();
                pool.submit(
                    jobs,
                    Box::new(move || loop {
                        let next = work_rx.lock().expect("queue lock").recv();
                        let Ok((i, p)) = next else { break };
                        let t0 = Instant::now();
                        let active = ActivePoint::enter();
                        let row = p.run();
                        drop(active);
                        let dt = t0.elapsed();
                        if res_tx.send((i, p.label(), row, dt)).is_err() {
                            break;
                        }
                    }),
                );
            }
            drop(res_tx);
            let mut done = 0usize;
            while let Ok((i, label, row, dt)) = res_rx.recv() {
                done += 1;
                self.report(done, n, &label, dt);
                rows[i] = Some(row);
                times[i] = dt;
            }
        }

        let merged: Vec<P::Row> = rows
            .into_iter()
            .map(|r| r.expect("every point produced a row"))
            .collect();
        let timing = SweepTiming {
            wall: sweep_start.elapsed(),
            per_point: times,
            jobs,
        };
        if self.progress {
            eprintln!(
                "[{}] {} points in {:.2?} ({} jobs, {:.2?} cpu)",
                self.name,
                n,
                timing.wall,
                timing.jobs,
                timing.cpu_time()
            );
        }
        (merged, timing)
    }

    fn report(&self, done: usize, total: usize, label: &str, dt: Duration) {
        if self.progress {
            if label.is_empty() {
                eprintln!("[{} {done}/{total}] {dt:.2?}", self.name);
            } else {
                eprintln!("[{} {done}/{total}] {label} ({dt:.2?})", self.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate floors `min_host` at 2 and requires >= 2 workers; the
    /// JSON header keeps every field on a `parallelism`-bearing line so
    /// invariance tests can strip it wholesale.
    #[test]
    fn parallelism_report_gates_and_serializes() {
        let r = ParallelismReport {
            host: 4,
            jobs: 4,
            observed: 3,
        };
        assert!(r.can_assert_speedup(2));
        assert!(r.can_assert_speedup(4));
        assert!(!r.can_assert_speedup(5));
        assert!(!ParallelismReport { jobs: 1, ..r }.can_assert_speedup(2));
        assert!(!ParallelismReport { host: 1, ..r }.can_assert_speedup(0));
        let json = r.json_fields();
        for key in [
            "\"jobs\": 4",
            "\"host_parallelism\": 4",
            "\"observed_parallelism\": 3",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(
            json.lines().all(|l| l.contains("parallelism")),
            "every header line must be strippable by a 'parallelism' filter: {json}"
        );
        assert!(r.skip_note().contains("host parallelism 4"));
        let captured = ParallelismReport::capture(7);
        assert_eq!(captured.jobs, 7);
        assert!(captured.host >= 1);
    }

    #[test]
    fn seed_depends_on_name_and_index() {
        assert_eq!(point_seed("a", 7), point_seed("a", 7));
        assert_ne!(point_seed("a", 0), point_seed("a", 1));
        assert_ne!(point_seed("a", 0), point_seed("b", 0));
        // Seeds along one experiment form a pairwise-distinct sequence.
        let seeds: Vec<u64> = (0..64).map(|i| point_seed("exp", i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "seed collision");
    }

    #[test]
    fn ordered_merge_restores_point_order() {
        // Points finish in scrambled order (later points are cheaper),
        // but rows come back in submission order.
        let points: Vec<_> = (0..16u64)
            .map(|i| {
                FnPoint::new(format!("p{i}"), move || {
                    // Unequal work so completion order differs from
                    // submission order under parallel execution.
                    let mut acc = point_seed("order", i);
                    for _ in 0..(16 - i) * 5_000 {
                        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    }
                    (i, acc)
                })
            })
            .collect();
        let rows = SweepRunner::new("order", 4).quiet().run(points);
        for (i, &(idx, _)) in rows.iter().enumerate() {
            assert_eq!(i as u64, idx, "row {i} out of order");
        }
    }

    #[test]
    fn parallel_rows_match_sequential() {
        let mk = || {
            (0..12u64)
                .map(|i| {
                    FnPoint::new(String::new(), move || {
                        let mut rng = crate::SplitMix64::new(point_seed("par", i));
                        (0..100).fold(0u64, |a, _| a.wrapping_add(rng.next_u64()))
                    })
                })
                .collect::<Vec<_>>()
        };
        let seq = SweepRunner::new("par", 1).quiet().run(mk());
        let par = SweepRunner::new("par", 4).quiet().run(mk());
        assert_eq!(seq, par);
    }

    #[test]
    fn timing_counts_every_point() {
        let points: Vec<_> = (0..5u64)
            .map(|i| FnPoint::new(String::new(), move || i))
            .collect();
        let (rows, timing) = SweepRunner::new("t", 2).quiet().run_timed(points);
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
        assert_eq!(timing.per_point.len(), 5);
        assert_eq!(timing.jobs, 2);
        assert!(timing.wall >= Duration::ZERO);
    }

    #[test]
    fn pool_is_reused_across_sweeps() {
        // Back-to-back parallel sweeps must not accumulate threads: the
        // persistent pool grows to the largest jobs count and stops.
        let mk = |tag: u64| {
            (0..6u64)
                .map(move |i| FnPoint::new(String::new(), move || tag * 100 + i))
                .collect::<Vec<_>>()
        };
        for round in 0..4u64 {
            let rows = SweepRunner::new("pool-reuse", 3).quiet().run(mk(round));
            assert_eq!(rows, (0..6).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
        assert!(observed_parallelism() >= 1);
    }

    #[test]
    fn nested_sweep_from_pool_worker_runs_inline() {
        // A point that itself runs a parallel sweep must complete (the
        // inner sweep falls back to inline execution) with correct rows.
        let points: Vec<_> = (0..3u64)
            .map(|outer| {
                FnPoint::new(format!("outer{outer}"), move || {
                    let inner: Vec<_> = (0..4u64)
                        .map(|i| FnPoint::new(String::new(), move || outer * 10 + i))
                        .collect();
                    SweepRunner::new("inner", 4).quiet().run(inner)
                })
            })
            .collect();
        let rows = SweepRunner::new("outer", 2).quiet().run(points);
        for (outer, inner_rows) in rows.iter().enumerate() {
            let expect: Vec<u64> = (0..4).map(|i| outer as u64 * 10 + i).collect();
            assert_eq!(*inner_rows, expect);
        }
    }

    /// Regression test for the spawn-failure counter leak: a failed
    /// `thread::Builder::spawn` used to leave the optimistic
    /// compare-exchange increment in place, so the pool believed
    /// phantom workers existed and a later sweep could enqueue work no
    /// thread would ever drain. The counter must roll back and the
    /// submitted task must still run (inline, on the caller's thread).
    #[test]
    fn spawn_failure_rolls_back_counter_and_runs_inline() {
        let pool = WorkerPool::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let mut failing: Box<dyn FnMut(String, WorkerBody) -> std::io::Result<()>> =
            Box::new(|_name, _body| {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected spawn failure",
                ))
            });
        pool.submit_with(
            4,
            Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            }),
            &mut *failing,
        );
        assert_eq!(
            pool.spawned.load(Ordering::Relaxed),
            0,
            "failed spawn must roll its reservation back"
        );
        assert_eq!(pool.alive.load(Ordering::Relaxed), 0);
        assert_eq!(
            ran.load(Ordering::SeqCst),
            1,
            "with zero workers the task must run inline, not be stranded"
        );

        // The pool is not poisoned: once spawning works again it grows
        // and drains normally.
        let (tx, rx) = mpsc::channel();
        pool.submit(
            2,
            Box::new(move || {
                tx.send(7u32).expect("result channel open");
            }),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30))
                .expect("task drained"),
            7
        );
        assert_eq!(pool.spawned.load(Ordering::Relaxed), 2);
        assert_eq!(pool.alive.load(Ordering::Relaxed), 2);
    }

    /// Partial growth: the first spawn succeeds, the second fails. The
    /// pool must settle on exactly one worker (no leaked reservation)
    /// and that worker must drain the submitted task.
    #[test]
    fn partial_spawn_failure_keeps_pool_functional() {
        let pool = WorkerPool::new();
        let mut calls = 0usize;
        let mut flaky = |name: String, body: WorkerBody| {
            calls += 1;
            if calls >= 2 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "injected spawn failure",
                ));
            }
            std::thread::Builder::new()
                .name(name)
                .spawn(body)
                .map(|_| ())
        };
        let (tx, rx) = mpsc::channel();
        pool.submit_with(
            4,
            Box::new(move || {
                tx.send(1u32).expect("result channel open");
            }),
            &mut flaky,
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).expect("drained"),
            1
        );
        assert_eq!(
            pool.spawned.load(Ordering::Relaxed),
            1,
            "one success + one rolled-back failure"
        );
        assert_eq!(pool.alive.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_resolution_prefers_env() {
        // Serialize with other env-reading tests by using a dedicated
        // runner rather than mutating the process environment here;
        // just check the clamp and default path.
        assert!(default_jobs() >= 1);
        assert_eq!(SweepRunner::new("x", 0).jobs(), 1);
    }
}
