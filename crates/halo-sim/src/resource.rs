//! Latency + occupancy timing primitives.
//!
//! The simulator uses the classic "latency and occupancy" discrete-time
//! model: each hardware structure (cache bank, CHA ingress port, hash
//! unit, DRAM channel) is a [`Resource`] that serves requests in order.
//! A request arriving at time `t` occupies the resource for its
//! *occupancy* (initiation interval) and completes after its *latency*.
//! Pipelined units have occupancy < latency; unpipelined ones have
//! occupancy == latency.

use crate::cycle::{Cycle, Cycles};

/// A single-server, in-order resource with configurable initiation
/// interval (occupancy) per request.
///
/// # Examples
///
/// ```
/// use halo_sim::{Cycle, Cycles, Resource};
///
/// // A fully pipelined unit: 3-cycle latency, new request every cycle.
/// let mut unit = Resource::pipelined("hash", Cycles(3));
/// let a = unit.serve(Cycle(0));
/// let b = unit.serve(Cycle(0));
/// assert_eq!(a, Cycle(3));
/// assert_eq!(b, Cycle(4)); // issued one cycle later
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    latency: Cycles,
    occupancy: Cycles,
    /// Reserved busy intervals `[start, end)`, sorted and disjoint.
    ///
    /// Interval tracking (rather than a scalar `next_free`) keeps the
    /// model causal when *independent* requesters reserve the resource
    /// out of program order: a request arriving earlier in simulated
    /// time slots into any idle gap instead of queueing behind
    /// later-in-time reservations made by an earlier `serve` call.
    intervals: Vec<(u64, u64)>,
    /// Times before this are compacted away; requests arriving earlier
    /// are conservatively bumped to it.
    floor: u64,
    served: u64,
    busy: Cycles,
}

/// Intervals retained before compaction kicks in.
const MAX_INTERVALS: usize = 256;

impl Resource {
    /// Creates a resource with independent latency and occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero (a zero initiation interval would
    /// admit unbounded throughput).
    #[must_use]
    pub fn new(name: &'static str, latency: Cycles, occupancy: Cycles) -> Self {
        assert!(occupancy.0 > 0, "resource {name} with zero occupancy");
        Resource {
            name,
            latency,
            occupancy,
            intervals: Vec::new(),
            floor: 0,
            served: 0,
            busy: Cycles::ZERO,
        }
    }

    /// A fully pipelined resource: one new request per cycle, `latency`
    /// cycles to complete each.
    #[must_use]
    pub fn pipelined(name: &'static str, latency: Cycles) -> Self {
        Resource::new(name, latency, Cycles(1))
    }

    /// An unpipelined resource: busy for the whole `latency`.
    #[must_use]
    pub fn unpipelined(name: &'static str, latency: Cycles) -> Self {
        Resource::new(name, latency, latency)
    }

    /// Reserves the first idle window of `self.occupancy` cycles at or
    /// after `at`, returning its start.
    fn reserve(&mut self, at: Cycle) -> Cycle {
        let need = self.occupancy.0;
        let mut start = at.0.max(self.floor);
        // Intervals ending at or before `start` cannot constrain the
        // reservation (they satisfy neither the gap test nor the bump
        // test below), so skip them wholesale. Dependent-chain callers
        // arrive in nondecreasing time, which lands this binary search
        // at the tail and makes the common serve O(log n) instead of a
        // full walk.
        let first = self.intervals.partition_point(|&(_, e)| e <= start);
        // Walk the remaining intervals (sorted) looking for a gap.
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate().skip(first) {
            if start + need <= s {
                insert_at = i;
                break;
            }
            if start < e {
                start = e;
            }
        }
        self.intervals.insert(insert_at, (start, start + need));
        // Merge neighbours that now touch.
        if insert_at + 1 < self.intervals.len()
            && self.intervals[insert_at].1 >= self.intervals[insert_at + 1].0
        {
            let next = self.intervals.remove(insert_at + 1);
            self.intervals[insert_at].1 = self.intervals[insert_at].1.max(next.1);
        }
        if insert_at > 0 && self.intervals[insert_at - 1].1 >= self.intervals[insert_at].0 {
            let cur = self.intervals.remove(insert_at);
            self.intervals[insert_at - 1].1 = self.intervals[insert_at - 1].1.max(cur.1);
        }
        // Compact old history: requests rarely arrive far in the past.
        if self.intervals.len() > MAX_INTERVALS {
            let drop = self.intervals.len() - MAX_INTERVALS / 2;
            self.floor = self.intervals[drop - 1].1;
            self.intervals.drain(..drop);
        }
        self.served += 1;
        self.busy += self.occupancy;
        Cycle(start)
    }

    /// Serves a request arriving at `at`; returns its completion time.
    ///
    /// The request occupies the first idle window of `occupancy` cycles
    /// at or after `at` and completes `latency` cycles after it starts
    /// service.
    pub fn serve(&mut self, at: Cycle) -> Cycle {
        self.reserve(at) + self.latency
    }

    /// Like [`serve`](Self::serve) but with a request-specific latency
    /// (occupancy still fixed); used where service time depends on the
    /// request (e.g. DRAM row hit vs miss).
    pub fn serve_with_latency(&mut self, at: Cycle, latency: Cycles) -> Cycle {
        self.reserve(at) + latency
    }

    /// The earliest time a new request could start service if it
    /// arrived now (end of the last reservation).
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        Cycle(self.intervals.last().map_or(self.floor, |&(_, e)| e))
    }

    /// Whether a request arriving at `at` would have to wait.
    #[must_use]
    pub fn is_busy_at(&self, at: Cycle) -> bool {
        let need = self.occupancy.0;
        let t = at.0;
        if t < self.floor {
            return true;
        }
        self.intervals
            .iter()
            .any(|&(s, e)| t >= s.saturating_sub(need - 1) && t < e)
    }

    /// Number of requests served so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total busy time accumulated.
    #[must_use]
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Utilization in `[0, 1]` over the window ending at `now`.
    #[must_use]
    pub fn utilization(&self, now: Cycle) -> f64 {
        if now.0 == 0 {
            0.0
        } else {
            (self.busy.0 as f64 / now.0 as f64).min(1.0)
        }
    }

    /// The resource's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets the resource to idle at time zero (statistics cleared).
    pub fn reset(&mut self) {
        self.intervals.clear();
        self.floor = 0;
        self.served = 0;
        self.busy = Cycles::ZERO;
    }

    /// Serves a request that overlaps out-of-order with other
    /// requesters: identical to [`serve`](Self::serve) (interval
    /// reservation already handles this); kept for call-site clarity.
    pub fn serve_unordered(&mut self, at: Cycle) -> Cycle {
        self.serve(at)
    }
}

/// A bank-interleaved resource: `n` identical servers, requests routed by
/// an explicit bank index (e.g. address-hashed LLC banks).
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<Resource>,
}

impl BankedResource {
    /// Creates `n` identical banks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `occupancy` is zero.
    #[must_use]
    pub fn new(name: &'static str, n: usize, latency: Cycles, occupancy: Cycles) -> Self {
        assert!(n > 0, "banked resource with zero banks");
        BankedResource {
            banks: (0..n)
                .map(|_| Resource::new(name, latency, occupancy))
                .collect(),
        }
    }

    /// Serves a request on bank `bank % n`.
    pub fn serve(&mut self, bank: usize, at: Cycle) -> Cycle {
        let n = self.banks.len();
        self.banks[bank % n].serve(at)
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Always false (constructed non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total requests served across banks.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.banks.iter().map(Resource::served).sum()
    }

    /// Resets all banks.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

/// A token-limited window, modeling structures that cap the number of
/// simultaneously outstanding operations (MSHRs, scoreboard slots,
/// load/store-queue entries).
///
/// Completion times are tracked so a new acquisition at time `t` blocks
/// until the oldest outstanding operation has completed.
#[derive(Debug, Clone)]
pub struct OutstandingWindow {
    capacity: usize,
    /// Completion times of in-flight operations (unordered).
    inflight: Vec<Cycle>,
    stalls: u64,
}

impl OutstandingWindow {
    /// Creates a window admitting at most `capacity` concurrent operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity window");
        OutstandingWindow {
            capacity,
            inflight: Vec::with_capacity(capacity),
            stalls: 0,
        }
    }

    /// Acquires a slot for an operation arriving at `at`; returns the time
    /// the slot becomes available (>= `at`). The caller must then
    /// [`commit`](Self::commit) the operation's completion time.
    pub fn acquire(&mut self, at: Cycle) -> Cycle {
        // Drop entries that completed by `at`.
        self.inflight.retain(|&c| c > at);
        if self.inflight.len() < self.capacity {
            return at;
        }
        // Must wait for the earliest completion.
        let (idx, &earliest) = self
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .expect("window full implies non-empty");
        self.inflight.swap_remove(idx);
        self.stalls += 1;
        earliest.max(at)
    }

    /// Registers the completion time of an operation whose slot was
    /// acquired.
    pub fn commit(&mut self, completes_at: Cycle) {
        self.inflight.push(completes_at);
    }

    /// The completion time of the last outstanding operation, i.e. when
    /// the window fully drains (`at` if already empty).
    #[must_use]
    pub fn drain_time(&self, at: Cycle) -> Cycle {
        self.inflight.iter().copied().fold(at, Cycle::max)
    }

    /// Number of times acquisition had to wait for a completion.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Maximum concurrent operations.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all in-flight state.
    pub fn reset(&mut self) {
        self.inflight.clear();
        self.stalls = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_resource_overlaps() {
        let mut r = Resource::pipelined("p", Cycles(10));
        assert_eq!(r.serve(Cycle(0)), Cycle(10));
        assert_eq!(r.serve(Cycle(0)), Cycle(11));
        assert_eq!(r.serve(Cycle(0)), Cycle(12));
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn unpipelined_resource_serializes() {
        let mut r = Resource::unpipelined("u", Cycles(10));
        assert_eq!(r.serve(Cycle(0)), Cycle(10));
        assert_eq!(r.serve(Cycle(0)), Cycle(20));
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::pipelined("p", Cycles(5));
        r.serve(Cycle(0));
        assert!(!r.is_busy_at(Cycle(100)));
        assert_eq!(r.serve(Cycle(100)), Cycle(105));
    }

    #[test]
    fn variable_latency_service() {
        let mut r = Resource::new("dram", Cycles(100), Cycles(4));
        assert_eq!(r.serve_with_latency(Cycle(0), Cycles(50)), Cycle(50));
        assert_eq!(r.serve_with_latency(Cycle(0), Cycles(50)), Cycle(54));
    }

    #[test]
    fn banked_resource_routes_by_bank() {
        let mut b = BankedResource::new("bank", 2, Cycles(10), Cycles(10));
        assert_eq!(b.serve(0, Cycle(0)), Cycle(10));
        assert_eq!(b.serve(1, Cycle(0)), Cycle(10)); // different bank, no wait
        assert_eq!(b.serve(2, Cycle(0)), Cycle(20)); // wraps to bank 0
        assert_eq!(b.served(), 3);
    }

    #[test]
    fn window_limits_concurrency() {
        let mut w = OutstandingWindow::new(2);
        let t0 = w.acquire(Cycle(0));
        assert_eq!(t0, Cycle(0));
        w.commit(Cycle(100));
        let t1 = w.acquire(Cycle(0));
        assert_eq!(t1, Cycle(0));
        w.commit(Cycle(50));
        // Window full; next acquire waits for earliest completion (50).
        let t2 = w.acquire(Cycle(0));
        assert_eq!(t2, Cycle(50));
        assert_eq!(w.stalls(), 1);
    }

    #[test]
    fn window_drain_time() {
        let mut w = OutstandingWindow::new(4);
        w.acquire(Cycle(0));
        w.commit(Cycle(30));
        w.acquire(Cycle(0));
        w.commit(Cycle(70));
        assert_eq!(w.drain_time(Cycle(0)), Cycle(70));
        assert_eq!(w.drain_time(Cycle(80)), Cycle(80));
    }

    #[test]
    fn window_expires_completed_entries() {
        let mut w = OutstandingWindow::new(1);
        w.acquire(Cycle(0));
        w.commit(Cycle(10));
        // At time 20 the previous op has completed; no stall.
        assert_eq!(w.acquire(Cycle(20)), Cycle(20));
        assert_eq!(w.stalls(), 0);
    }

    #[test]
    fn out_of_order_requests_fill_gaps() {
        let mut r = Resource::new("port", Cycles(26), Cycles(2));
        // A late-in-time request reserved first...
        let late = r.serve(Cycle(100));
        assert_eq!(late, Cycle(126));
        // ...must not delay an earlier-in-time independent request.
        let early = r.serve(Cycle(10));
        assert_eq!(early, Cycle(36), "early request should use the idle gap");
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut r = Resource::new("u", Cycles(4), Cycles(4));
        r.serve(Cycle(0)); // busy [0,4)
        r.serve(Cycle(6)); // busy [6,10)
                           // A request at 3 needs 4 idle cycles; gap [4,6) is too small.
        let done = r.serve(Cycle(3));
        assert_eq!(done, Cycle(14), "must start at 10");
    }

    #[test]
    fn compaction_keeps_working() {
        let mut r = Resource::pipelined("p", Cycles(1));
        for i in 0..2000u64 {
            r.serve(Cycle(i * 3));
        }
        // Still serves correctly after compaction.
        let done = r.serve(Cycle(10_000));
        assert_eq!(done, Cycle(10_001));
        assert_eq!(r.served(), 2001);
    }

    #[test]
    fn utilization_bounded() {
        let mut r = Resource::unpipelined("u", Cycles(10));
        r.serve(Cycle(0));
        assert!((r.utilization(Cycle(20)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(Cycle::ZERO), 0.0);
    }
}
