//! Cycle-attribution tracing: latency histograms and a span ring buffer
//! with a Chrome trace-event exporter (DESIGN.md §10).
//!
//! The paper's evaluation is about *where cycles go* — core vs
//! CHA/accelerator vs mesh vs DRAM — and about latency under load, not
//! just throughput means. This module records both views from the same
//! call sites:
//!
//! * [`LatencyHistogram`] — log2-bucketed latency distributions with
//!   p50/p95/p99/max, one per `(component, op)` class, always cheap
//!   enough to keep for every span;
//! * a bounded ring buffer of [`TraceEvent`] spans (simulated-cycle
//!   begin/end pairs) that [`Tracer::to_chrome_trace`] exports in the
//!   Chrome trace-event JSON format, so a run opens directly in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Tracing is **off by default**: a disabled [`Tracer`] reduces every
//! [`Tracer::span`] call to one branch on a bool, and instrumented
//! components check [`Tracer::is_enabled`] before doing any work to
//! build a span, so simulation output (timing, statistics, figure
//! tables) is byte-identical with the subsystem compiled in.
//!
//! # Examples
//!
//! ```
//! use halo_sim::{Cycle, Tracer};
//!
//! let mut tracer = Tracer::new(1024);
//! tracer.span("mem", "llc", Cycle(100), Cycle(142));
//! tracer.span("mem", "llc", Cycle(150), Cycle(190));
//! let h = tracer.histogram("mem", "llc").unwrap();
//! assert_eq!(h.count(), 2);
//! assert_eq!(h.max(), 42);
//! let json = tracer.to_chrome_trace();
//! assert!(json.contains("\"traceEvents\""));
//! ```

use crate::cycle::{Cycle, CORE_HZ};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 latency buckets: bucket 0 holds zero-cycle latencies,
/// bucket `k >= 1` holds latencies in `[2^(k-1), 2^k)`. 65 buckets cover
/// the full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram (latencies in simulated cycles).
///
/// Recording is O(1) and allocation-free (a leading-zeros count plus one
/// array increment), so a histogram per operation class can stay enabled
/// on simulator hot paths. Percentiles are resolved to the upper bound
/// of the containing bucket, clamped to the observed maximum — a
/// factor-of-two resolution, which is what latency tails are usually
/// quoted at anyway.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

/// Bucket index of a latency value: 0 for 0, otherwise
/// `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation (in cycles).
    #[inline]
    pub fn record(&mut self, latency: u64) {
        self.buckets[bucket_of(latency)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.max = self.max.max(latency);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded latencies (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded latency (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded latency (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The latency at quantile `p` (`0.0..=1.0`), resolved to the upper
    /// bound of the containing log2 bucket and clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let upper = if k == 0 {
                    0
                } else if k >= 64 {
                    u64::MAX
                } else {
                    (1u64 << k) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The median (bucket-resolved; see [`percentile`](Self::percentile)).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 95th percentile (bucket-resolved).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// The 99th percentile (bucket-resolved).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merges another histogram's observations into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// One completed span: a `(component, op)`-classed interval of simulated
/// cycles, e.g. `("mem", "llc")` for an LLC-satisfied access or
/// `("engine", "LOOKUP_B")` for one blocking accelerator lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The emitting component (`"core"`, `"mem"`, `"engine"`, `"accel"`,
    /// `"vswitch"`).
    pub component: &'static str,
    /// Operation class within the component.
    pub op: &'static str,
    /// Span begin, in simulated cycles.
    pub start: Cycle,
    /// Span end, in simulated cycles (`end >= start`).
    pub end: Cycle,
}

/// Default ring-buffer capacity used by [`Tracer::new`] callers that
/// don't size it explicitly (see [`Tracer::enable`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The tracing sink: per-op-class latency histograms plus a bounded
/// span ring buffer, runtime-off by default.
///
/// Components call [`span`](Self::span) with static component/op names;
/// when disabled the call is a single branch. The ring buffer keeps the
/// most recent `capacity` spans (older spans are overwritten and counted
/// in [`dropped`](Self::dropped)); histograms always see every span.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring has wrapped.
    head: usize,
    dropped: u64,
    ids: BTreeMap<(&'static str, &'static str), usize>,
    keys: Vec<(&'static str, &'static str)>,
    hists: Vec<LatencyHistogram>,
}

impl Tracer {
    /// Creates a disabled tracer (the default state of every simulated
    /// system): [`span`](Self::span) is a no-op until
    /// [`enable`](Self::enable) is called.
    #[must_use]
    pub fn off() -> Self {
        Tracer::default()
    }

    /// Creates an enabled tracer whose ring buffer keeps the most
    /// recent `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let mut t = Tracer::default();
        t.enable(capacity);
        t
    }

    /// Enables recording with the given ring-buffer capacity (pass
    /// [`DEFAULT_TRACE_CAPACITY`] when in doubt). Previously recorded
    /// data is kept.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
        self.events.reserve(self.capacity.min(1 << 20));
    }

    /// Disables recording; recorded data stays readable.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether spans are currently recorded. Instrumented components
    /// check this before assembling span arguments, so the disabled
    /// path costs one branch.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one completed span. No-op while disabled.
    ///
    /// # Panics
    ///
    /// Debug builds assert `end >= start`.
    #[inline]
    pub fn span(&mut self, component: &'static str, op: &'static str, start: Cycle, end: Cycle) {
        if !self.enabled {
            return;
        }
        self.record_span(component, op, start, end);
    }

    /// The cold body of [`span`](Self::span), kept out of line so the
    /// enabled check inlines cheaply at every call site.
    fn record_span(&mut self, component: &'static str, op: &'static str, start: Cycle, end: Cycle) {
        debug_assert!(
            end >= start,
            "span ends ({end:?}) before it starts ({start:?})"
        );
        let id = match self.ids.get(&(component, op)) {
            Some(&id) => id,
            None => {
                let id = self.keys.len();
                self.ids.insert((component, op), id);
                self.keys.push((component, op));
                self.hists.push(LatencyHistogram::new());
                id
            }
        };
        self.hists[id].record((end - start).0);
        let ev = TraceEvent {
            component,
            op,
            start,
            end,
        };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of spans currently held in the ring buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of spans overwritten because the ring buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained spans in chronological (recording) order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let (older, newer) = self.events.split_at(self.head.min(self.events.len()));
        newer.iter().chain(older.iter())
    }

    /// The latency histogram of one `(component, op)` class, if any
    /// span of that class has been recorded.
    #[must_use]
    pub fn histogram(&self, component: &str, op: &str) -> Option<&LatencyHistogram> {
        self.ids.get(&(component, op)).map(|&id| &self.hists[id])
    }

    /// Every recorded `(component, op)` class with its histogram, in
    /// first-recorded order. Histograms cover *all* spans, including
    /// those dropped from the ring buffer.
    pub fn op_classes(
        &self,
    ) -> impl Iterator<Item = ((&'static str, &'static str), &LatencyHistogram)> + '_ {
        self.keys.iter().copied().zip(self.hists.iter())
    }

    /// Drops all recorded spans and histogram contents; the
    /// enabled/capacity state is unchanged.
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
        for h in &mut self.hists {
            *h = LatencyHistogram::new();
        }
    }

    /// Serializes the retained spans in the Chrome trace-event JSON
    /// format (the "JSON Array Format" with an object wrapper), openable
    /// in `chrome://tracing` or Perfetto.
    ///
    /// Each span becomes a `"ph": "X"` complete event: `ts`/`dur` are in
    /// microseconds at the reference core frequency ([`CORE_HZ`]), the
    /// exact cycle values ride along in `args`, and each component maps
    /// to its own `tid` (named via `"M"` metadata events) so components
    /// render as separate tracks.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let us_per_cycle = 1.0e6 / CORE_HZ as f64;
        // Stable component -> track id mapping in first-seen order.
        let mut tids: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut track_names: Vec<&'static str> = Vec::new();
        for &(component, _) in &self.keys {
            tids.entry(component).or_insert_with(|| {
                track_names.push(component);
                track_names.len() - 1
            });
        }
        let mut s = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (tid, name) in track_names.iter().enumerate() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for ev in self.events() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let tid = tids[ev.component];
            let dur = (ev.end - ev.start).0;
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.4},\"dur\":{:.4},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"start_cyc\":{},\"dur_cyc\":{}}}}}",
                ev.op,
                ev.component,
                ev.start.0 as f64 * us_per_cycle,
                dur as f64 * us_per_cycle,
                tid,
                ev.start.0,
                dur
            );
        }
        s.push_str("\n],\"displayTimeUnit\":\"ns\",");
        let _ = writeln!(s, "\"otherData\":{{\"dropped_spans\":{}}}}}", self.dropped);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // Bucket resolution: the true p50 (500) lies in [2^8, 2^9), so
        // the reported value is the bucket upper bound 511.
        assert_eq!(h.p50(), 511);
        assert_eq!(h.p95(), 1000, "clamped to the observed max");
        assert_eq!(h.p99(), 1000);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_pins_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(37);
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p95(), 37);
        assert_eq!(h.p99(), 37);
        assert_eq!(h.percentile(1.0), 37);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.is_enabled());
        t.span("mem", "l1", Cycle(0), Cycle(5));
        assert!(t.is_empty());
        assert!(t.histogram("mem", "l1").is_none());
    }

    #[test]
    fn spans_feed_events_and_histograms() {
        let mut t = Tracer::new(16);
        t.span("mem", "l1", Cycle(0), Cycle(4));
        t.span("mem", "llc", Cycle(4), Cycle(40));
        t.span("core", "sw_lookup", Cycle(0), Cycle(200));
        assert_eq!(t.len(), 3);
        assert_eq!(t.histogram("mem", "l1").unwrap().count(), 1);
        assert_eq!(t.histogram("mem", "llc").unwrap().max(), 36);
        let classes: Vec<_> = t.op_classes().map(|(k, _)| k).collect();
        assert_eq!(
            classes,
            vec![("mem", "l1"), ("mem", "llc"), ("core", "sw_lookup")]
        );
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut t = Tracer::new(4);
        for i in 0..10u64 {
            t.span("mem", "l1", Cycle(i), Cycle(i + 1));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Retained spans are the most recent four, in order.
        let starts: Vec<u64> = t.events().map(|e| e.start.0).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
        // Histograms saw every span, dropped or not.
        assert_eq!(t.histogram("mem", "l1").unwrap().count(), 10);
    }

    #[test]
    fn chrome_trace_shape() {
        let mut t = Tracer::new(16);
        t.span("mem", "llc", Cycle(100), Cycle(142));
        t.span("engine", "LOOKUP_B", Cycle(50), Cycle(180));
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"LOOKUP_B\""));
        assert!(json.contains("\"cat\":\"mem\""));
        assert!(json.contains("\"dur_cyc\":42"));
        // Two components -> two distinct named tracks.
        assert!(json.contains("\"args\":{\"name\":\"mem\"}"));
        assert!(json.contains("\"args\":{\"name\":\"engine\"}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn clear_keeps_enablement() {
        let mut t = Tracer::new(8);
        t.span("mem", "l1", Cycle(0), Cycle(1));
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        assert_eq!(
            t.histogram("mem", "l1").map(LatencyHistogram::count),
            Some(0)
        );
        t.span("mem", "l1", Cycle(0), Cycle(1));
        assert_eq!(t.len(), 1);
    }
}
