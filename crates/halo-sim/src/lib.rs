//! # halo-sim
//!
//! Deterministic simulation substrate for the HALO reproduction
//! (Yuan et al., *HALO: Accelerating Flow Classification for Scalable
//! Packet Processing in NFV*, ISCA 2019).
//!
//! This crate provides the timing, randomness, and statistics primitives
//! every other crate in the workspace builds on:
//!
//! * [`Cycle`] / [`Cycles`] — absolute times and durations in core cycles.
//! * [`Resource`], [`BankedResource`], [`OutstandingWindow`] — the
//!   latency + occupancy model used for cache banks, CHA ports,
//!   accelerator hash units, DRAM channels, MSHRs, and scoreboards.
//! * [`SplitMix64`] / [`Zipf`] — seeded, reproducible random streams for
//!   workload generation.
//! * [`Stats`] — counter/summary registry each component reports into.
//! * [`Tracer`] / [`LatencyHistogram`] — the runtime-off-by-default
//!   cycle-attribution sink: per-op-class log2 latency histograms with
//!   p50/p95/p99/max plus a span ring buffer exportable as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto).
//! * [`SweepRunner`] / [`SweepPoint`] / [`point_seed`] — the
//!   multi-threaded sweep runner that fans independent experiment
//!   points over worker threads with deterministic per-point seeding
//!   and an ordered merge (parallel output is byte-identical to
//!   sequential).
//! * [`TextTable`] — shared result-table formatter for the experiment
//!   harness.
//!
//! # Examples
//!
//! ```
//! use halo_sim::{Cycle, Cycles, Resource};
//!
//! // Model an unpipelined 34-cycle LLC slice bank.
//! let mut bank = Resource::unpipelined("llc-bank", Cycles(34));
//! let first = bank.serve(Cycle(0));
//! let second = bank.serve(Cycle(0)); // queues behind the first
//! assert_eq!(first, Cycle(34));
//! assert_eq!(second, Cycle(68));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cycle;
mod resource;
mod rng;
mod stats;
mod sweep;
mod table;
mod trace;

pub use cycle::{Cycle, Cycles, CORE_HZ};
pub use resource::{BankedResource, OutstandingWindow, Resource};
pub use rng::{SplitMix64, StreamZipf, Zipf};
pub use stats::{Counter, StatId, Stats, Summary};
pub use sweep::{
    default_jobs, observed_parallelism, point_seed, FnPoint, ParallelismReport, SweepPoint,
    SweepRunner, SweepTiming, JOBS_ENV,
};
pub use table::{fmt_f64, TextTable};
pub use trace::{LatencyHistogram, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY, HIST_BUCKETS};
