//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the simulator (workload generation, hash
//! seeds, query arrival jitter) draws from [`SplitMix64`], seeded
//! explicitly, so that every experiment is bit-for-bit reproducible.

/// A `SplitMix64` pseudo-random number generator.
///
/// Small, fast, and statistically sound for simulation purposes
/// (it is the recommended seeder for the xoshiro family). Not
/// cryptographically secure.
///
/// # Examples
///
/// ```
/// use halo_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // simulation workloads tolerate the tiny modulo bias of widening
        // multiply without rejection.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over ranks `0..n`.
///
/// Used to model skewed flow popularity (a small set of "hot" flows takes
/// most of the traffic), the regime the paper's EMC layer exploits.
///
/// # Examples
///
/// ```
/// use halo_sim::{SplitMix64, Zipf};
///
/// let mut rng = SplitMix64::new(7);
/// let zipf = Zipf::new(1000, 0.99);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over ranks, `cdf[i]` = P(rank <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with exponent `theta`.
    ///
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has exactly one rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // constructed with n > 0
    }

    /// Samples a rank in `0..len()`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A Zipf sampler for *streaming* workloads whose rank count changes
/// over time (flow churn), with per-sample cost independent of the rank
/// count for the common exponents.
///
/// [`Zipf`] materializes a full CDF up front — fine for a fixed flow
/// set, but rebuilding it on every arrival/expiry would make churn
/// O(flows) per event. `StreamZipf` instead keeps the harmonic prefix
/// sums `zeta[k] = Σ_{i=1..k} i^-θ` in a lazily grown array:
///
/// * growing to a larger rank count appends only the new terms
///   (amortized O(1) per rank ever reached);
/// * shrinking is a plain counter update (the prefix stays valid);
/// * sampling uses the Gray et al. closed-form inverse for `θ < 1`
///   (the regime of the paper's 0.99 skew) — O(1) per sample — and an
///   exact binary search over the prefix sums for `θ ≥ 1`
///   (O(log n), still no O(flows) scan).
///
/// # Examples
///
/// ```
/// use halo_sim::{SplitMix64, StreamZipf};
///
/// let mut rng = SplitMix64::new(7);
/// let mut zipf = StreamZipf::new(1000, 0.99);
/// assert!(zipf.sample(&mut rng) < 1000);
/// zipf.resize(2000); // churn grew the live set — O(new ranks), once
/// assert!(zipf.sample(&mut rng) < 2000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamZipf {
    theta: f64,
    /// `zeta[k]` = Σ_{i=1..k} i^-θ; `zeta[0]` = 0. Grown lazily and
    /// never shrunk, so `resize` down and back up costs nothing.
    zeta: Vec<f64>,
    /// Current rank count; samples fall in `0..n`.
    n: usize,
}

impl StreamZipf {
    /// Builds a sampler over `n` ranks with exponent `theta`
    /// (`theta == 0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid zipf exponent");
        let mut z = StreamZipf {
            theta,
            zeta: vec![0.0],
            n: 0,
        };
        z.resize(n);
        z
    }

    /// Sets the rank count to `n`, extending the prefix sums only past
    /// the high-water mark reached so far.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn resize(&mut self, n: usize) {
        assert!(n > 0, "zipf over zero ranks");
        while self.zeta.len() <= n {
            let k = self.zeta.len() as f64;
            let last = *self.zeta.last().expect("seeded with zeta[0]");
            self.zeta.push(last + k.powf(-self.theta));
        }
        self.n = n;
    }

    /// Current rank count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the sampler has exactly one rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // constructed and resized with n > 0
    }

    /// The exponent θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..len()`: rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let n = self.n;
        if self.theta == 0.0 {
            return rng.below(n as u64) as usize;
        }
        if n == 1 {
            rng.next_u64(); // keep the stream position scenario-independent
            return 0;
        }
        let zn = self.zeta[n];
        if self.theta < 1.0 {
            // Gray et al. ("Quickly generating billion-record synthetic
            // databases", SIGMOD '94): closed-form inverse of the zeta
            // CDF, exact at ranks 0 and 1 and a tight continuous
            // approximation beyond — constant cost at any n.
            let u = rng.next_f64();
            let uz = u * zn;
            if uz < 1.0 {
                return 0;
            }
            if uz < 1.0 + 0.5f64.powf(self.theta) {
                return 1;
            }
            let alpha = 1.0 / (1.0 - self.theta);
            let eta = (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta[2] / zn);
            let rank = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as usize;
            rank.min(n - 1)
        } else {
            // θ ≥ 1: the closed form has no stable branch, so invert the
            // CDF exactly by binary search over the prefix sums.
            let target = rng.next_f64() * zn;
            let i = self.zeta[1..=n].partition_point(|&z| z < target);
            i.min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut parent = SplitMix64::new(3);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let mut rng = SplitMix64::new(5);
        let zipf = Zipf::new(1000, 1.0);
        let mut low = 0usize;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With theta=1 over 1000 ranks, the top 10 ranks carry ~39% of mass.
        assert!(low > SAMPLES / 4, "zipf not skewed: {low}");
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let mut rng = SplitMix64::new(6);
        let zipf = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500 && c < 2_500, "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn stream_zipf_stays_in_bounds_across_resizes() {
        let mut rng = SplitMix64::new(9);
        let mut z = StreamZipf::new(100, 0.99);
        for n in [100usize, 1, 7, 5000, 50] {
            z.resize(n);
            assert_eq!(z.len(), n);
            for _ in 0..500 {
                assert!(z.sample(&mut rng) < n, "rank escaped 0..{n}");
            }
        }
    }

    #[test]
    fn stream_zipf_matches_cdf_zipf_in_shape() {
        // Same skew target as `Zipf::new(1000, 1.0)`: the exact θ ≥ 1
        // branch must concentrate ~39% of mass on the top 10 ranks.
        let mut rng = SplitMix64::new(5);
        let z = StreamZipf::new(1000, 1.0);
        let mut low = 0usize;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(low > SAMPLES / 4, "stream zipf not skewed: {low}");
    }

    #[test]
    fn stream_zipf_closed_form_is_skewed_below_one() {
        let mut rng = SplitMix64::new(11);
        let z = StreamZipf::new(100_000, 0.99);
        let mut top = 0usize;
        const SAMPLES: usize = 20_000;
        for _ in 0..SAMPLES {
            if z.sample(&mut rng) < 1000 {
                top += 1;
            }
        }
        // Zipf(0.99) over 1e5 ranks puts well over a third of the mass
        // on the top 1% — uniform would put 1%.
        assert!(top > SAMPLES / 4, "closed form not skewed: {top}");
    }

    #[test]
    fn stream_zipf_zero_theta_is_uniformish() {
        let mut rng = SplitMix64::new(12);
        let z = StreamZipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500 && c < 2_500, "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn stream_zipf_resize_is_amortized_prefix_growth() {
        let mut z = StreamZipf::new(10, 0.9);
        let grown = z.zeta.len();
        z.resize(1000);
        assert_eq!(z.zeta.len(), 1001);
        z.resize(10); // shrink: prefix kept
        assert_eq!(z.zeta.len(), 1001);
        z.resize(1000); // regrow: no recomputation needed
        assert_eq!(z.zeta.len(), 1001);
        assert!(grown < 1001);
    }
}
