//! Plain-text result tables.
//!
//! The benchmark harness prints every reproduced figure/table as an
//! aligned text table; this module is the shared formatter so all
//! experiment output looks consistent and is trivially diffable.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use halo_sim::TextTable;
///
/// let mut t = TextTable::new(vec!["config", "cycles/pkt"]);
/// t.row(vec!["100K flows".into(), "340".into()]);
/// let s = t.to_string();
/// assert!(s.contains("config"));
/// assert!(s.contains("340"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (no escaping; cells must not contain commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                if i + 1 == widths.len() {
                    write!(f, "{cell}")?;
                } else {
                    write!(f, "{cell:<w$}  ")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a sensible number of digits for result tables.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(vec!["h1", "h2"]);
        t.row_display(vec![1, 2]);
        let csv = t.to_csv();
        assert_eq!(csv, "h1,h2\n1,2\n");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(123.4), "123");
        assert_eq!(fmt_f64(3.333), "3.33");
        assert_eq!(fmt_f64(0.12345), "0.1235");
    }
}
