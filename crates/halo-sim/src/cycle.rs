//! Cycle-domain time types.
//!
//! All timing in the simulator is expressed in CPU core cycles at the
//! reference frequency (2.1 GHz, matching the Intel Xeon Platinum 8160 the
//! paper characterizes and the gem5 configuration of Table 2).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Reference core frequency in Hz (2.1 GHz).
pub const CORE_HZ: u64 = 2_100_000_000;

/// An absolute point in simulated time, measured in core cycles.
///
/// `Cycle` is a transparent `u64` newtype so that absolute times and
/// durations ([`Cycles`]) cannot be confused.
///
/// # Examples
///
/// ```
/// use halo_sim::{Cycle, Cycles};
///
/// let start = Cycle::ZERO;
/// let later = start + Cycles(40);
/// assert_eq!(later - start, Cycles(40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

/// A duration, measured in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two points in time.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two points in time.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// Converts this point in time to seconds at the reference frequency.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CORE_HZ as f64
    }
}

impl Cycles {
    /// The zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the longer of two durations.
    #[must_use]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Converts this duration to seconds at the reference frequency.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CORE_HZ as f64
    }

    /// Converts to nanoseconds at the reference frequency.
    #[must_use]
    pub fn as_nanos_f64(self) -> f64 {
        self.as_secs_f64() * 1e9
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;
    fn sub(self, rhs: Cycle) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "negative cycle difference");
        Cycles(self.0 - rhs.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let a = Cycle(100);
        let b = a + Cycles(23);
        assert_eq!(b, Cycle(123));
        assert_eq!(b - a, Cycles(23));
        assert_eq!(b.since(a), Cycles(23));
        assert_eq!(a.since(b), Cycles::ZERO);
    }

    #[test]
    fn min_max() {
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
        assert_eq!(Cycle(3).min(Cycle(9)), Cycle(3));
        assert_eq!(Cycles(3).max(Cycles(9)), Cycles(9));
    }

    #[test]
    fn sum_of_durations() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn seconds_conversion() {
        assert!((Cycle(CORE_HZ).as_secs_f64() - 1.0).abs() < 1e-12);
        assert!((Cycles(21).as_nanos_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle(7).to_string(), "7cy");
        assert_eq!(Cycles(7).to_string(), "7cy");
    }
}
