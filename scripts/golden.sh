#!/usr/bin/env bash
# Golden-output harness for behavior-preserving datapath changes:
# regenerates the quick figure set at its fixed seeds and compares the
# sha256 digest of every output against the committed GOLDEN.sha256.
#
#   scripts/golden.sh            # verify against GOLDEN.sha256
#   scripts/golden.sh --update   # rewrite GOLDEN.sha256 from this tree
#
# The figures are deterministic in their seeds and byte-identical at
# any --jobs level (tests/hotpath.rs pins this), so digest equality is
# a meaningful "the datapath still computes exactly the same results"
# check, not a flaky snapshot. A refactor that is supposed to preserve
# behavior must leave GOLDEN.sha256 untouched; a change that
# intentionally shifts results must regenerate it with --update and
# explain the delta in its commit message.
set -euo pipefail
cd "$(dirname "$0")/.."

FIGS=(fig3 fig9 fig10 fig11 scaling ablation)
mode="verify"
[[ "${1:-}" == "--update" ]] && mode="update"

echo "==> cargo build --release -p halo-bench"
cargo build --release -p halo-bench

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
for fig in "${FIGS[@]}"; do
    echo "==> figures --quick --jobs 2 $fig"
    ./target/release/figures --quick --jobs 2 "$fig" > "$out/$fig.txt"
done

if [[ "$mode" == "update" ]]; then
    (cd "$out" && sha256sum "${FIGS[@]/%/.txt}") > GOLDEN.sha256
    echo "golden: wrote $(wc -l < GOLDEN.sha256) digests to GOLDEN.sha256"
else
    cp GOLDEN.sha256 "$out/"
    (cd "$out" && sha256sum -c GOLDEN.sha256)
    echo "golden: all quick figure outputs match GOLDEN.sha256"
fi
