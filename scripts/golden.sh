#!/usr/bin/env bash
# Golden-output harness for behavior-preserving datapath changes:
# regenerates the quick figure set at its fixed seeds and compares the
# sha256 digest of every output against the committed GOLDEN.sha256.
#
#   scripts/golden.sh            # verify against GOLDEN.sha256
#   scripts/golden.sh --update   # rewrite GOLDEN.sha256 from this tree
#
# The figures are deterministic in their seeds and byte-identical at
# any --jobs level (tests/hotpath.rs pins this), so digest equality is
# a meaningful "the datapath still computes exactly the same results"
# check, not a flaky snapshot. A refactor that is supposed to preserve
# behavior must leave GOLDEN.sha256 untouched; a change that
# intentionally shifts results must regenerate it with --update and
# explain the delta in its commit message.
set -euo pipefail
cd "$(dirname "$0")/.."

FIGS=(fig3 fig9 fig10 fig11 scaling ablation ablation-backends ablation-wildcard scale)
mode="verify"
[[ "${1:-}" == "--update" ]] && mode="update"

if [[ "$mode" == "update" ]]; then
    # Refuse to rewrite the digests while stale figure artifacts from a
    # previous run are sitting uncommitted in the tree: an --update that
    # silently coexists with leftover outputs makes it far too easy to
    # commit digests that do not correspond to this tree's code.
    artifacts=(BENCH_hotpath.json BENCH_sweep.json TRACE_halo.json ABLATION_backends.json ABLATION_wildcard.json SCALE_flows.json)
    stale=()
    for f in "${artifacts[@]}"; do
        # Tracked-and-clean copies are fine; anything else (untracked,
        # ignored, or locally modified) is a leftover from a prior run.
        if [[ -e "$f" ]] && ! git diff --quiet HEAD -- "$f" 2>/dev/null; then
            stale+=("$f")
        elif [[ -e "$f" ]] && ! git ls-files --error-unmatch "$f" >/dev/null 2>&1; then
            stale+=("$f")
        fi
    done
    if (( ${#stale[@]} )); then
        echo "golden: refusing --update, stale figure outputs present: ${stale[*]}" >&2
        echo "golden: remove or commit them first (they are regenerated artifacts)" >&2
        exit 1
    fi
fi

echo "==> cargo build --release -p halo-bench"
cargo build --release -p halo-bench

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
bin="$PWD/target/release/figures"
for fig in "${FIGS[@]}"; do
    echo "==> figures --quick --jobs 2 $fig"
    # Run from the scratch dir: some figures (ablation-backends) also
    # drop a JSON artifact into the working directory, and those must
    # not land in the repo root during a golden run.
    (cd "$out" && "$bin" --quick --jobs 2 "$fig" > "$out/$fig.txt")
done

if [[ "$mode" == "update" ]]; then
    (cd "$out" && sha256sum "${FIGS[@]/%/.txt}") > GOLDEN.sha256
    echo "golden: wrote $(wc -l < GOLDEN.sha256) digests to GOLDEN.sha256"
else
    cp GOLDEN.sha256 "$out/"
    (cd "$out" && sha256sum -c GOLDEN.sha256)
    echo "golden: all quick figure outputs match GOLDEN.sha256"
fi
