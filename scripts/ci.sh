#!/usr/bin/env bash
# Single entry point for the repository's checks: CI runs exactly this
# script, so local `scripts/ci.sh` and the workflow cannot drift.
#
# The whole sequence works offline: the workspace has path-only
# dependencies and a committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

echo "ci: all checks passed"
