//! The hybrid computation mechanism (§4.6): the linear-counting flow
//! register watches the active flow count and switches between the
//! software path (tiny working sets that live in L1) and the HALO
//! accelerators (everything else).
//!
//! Run with `cargo run --example hybrid_mode`.

use halo_nfv::accel::{
    AcceleratorConfig, FlowRegister, HaloEngine, HybridClassifier, HybridConfig, Mode,
};
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
use halo_nfv::sim::{Cycle, SplitMix64};
use halo_nfv::tables::{CuckooTable, FlowKey};

fn main() {
    // --- The flow register on its own (Fig. 8b). -----------------------
    println!("=== linear-counting flow register ===");
    let mut rng = SplitMix64::new(1);
    for flows in [8u64, 16, 32, 64, 128] {
        let mut reg = FlowRegister::new(32);
        let hashes: Vec<u64> = (0..flows).map(|_| rng.next_u64()).collect();
        for _ in 0..5 {
            for &h in &hashes {
                reg.observe(h);
            }
        }
        println!(
            "{:>4} true flows -> estimate {:>6.1} ({} of 32 bits set)",
            flows,
            reg.estimate(),
            32 - reg.unset()
        );
    }

    // --- The hybrid classifier in action. -------------------------------
    println!("\n=== hybrid classifier: traffic burst ===");
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 4096, 0.8, 13);
    for id in 0..4096u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), id)
            .unwrap();
    }
    for a in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(a);
    }

    let mut hybrid = HybridClassifier::new(&mut sys, CoreId(0), HybridConfig::default());
    println!("initial mode: {:?}", hybrid.mode());

    let mut t = Cycle(0);
    let mut rng = SplitMix64::new(2);
    // Phase 1: a handful of hot flows — software territory.
    for _ in 0..600 {
        let key = FlowKey::synthetic(rng.below(8), 13);
        let (v, done) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t);
        assert!(v.is_some());
        t = done;
    }
    println!("after 600 lookups over 8 flows:   mode {:?}", hybrid.mode());

    // Phase 2: traffic fans out to thousands of flows — HALO territory.
    for _ in 0..600 {
        let key = FlowKey::synthetic(rng.below(4096), 13);
        let (v, done) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t);
        assert!(v.is_some());
        t = done;
    }
    println!("after 600 lookups over 4K flows:  mode {:?}", hybrid.mode());

    // Phase 3: back to a few flows — the controller returns to software.
    for _ in 0..600 {
        let key = FlowKey::synthetic(rng.below(8), 13);
        let (v, done) = hybrid.lookup(&mut sys, &mut engine, &table, &key, t);
        assert!(v.is_some());
        t = done;
    }
    println!("after 600 more over 8 flows:      mode {:?}", hybrid.mode());

    let (sw, hw) = hybrid.split();
    println!(
        "\nlookup split: {sw} software / {hw} HALO, {} mode switches",
        hybrid.switches()
    );
    assert_eq!(hybrid.mode(), Mode::Software, "should end in software mode");
}
