//! The paper's §4.8 key-value-store application: a MemC3-style store
//! whose cuckoo index runs either in software or on the HALO
//! accelerators, with values read by the core through the returned
//! handle.
//!
//! Run with `cargo run --example kv_store`.

use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
use halo_nfv::kvstore::KvStore;
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};

fn main() {
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut kv = KvStore::new(&mut sys, 100_000);

    // Populate with memcached-like objects.
    println!("populating 50,000 objects...");
    for i in 0..50_000u64 {
        let key = format!("session:{i}");
        let value = format!(
            "{{\"user\":{i},\"ttl\":300,\"payload\":\"{}\"}}",
            "x".repeat(64)
        );
        kv.set(&mut sys, key.as_bytes(), value.as_bytes())
            .expect("store sized for the population");
    }
    kv.warm_index(&mut sys);
    println!("store holds {} items", kv.len());

    // Functional sanity.
    let v = kv.get(&mut sys, b"session:1234").expect("present");
    assert!(v.starts_with(b"{\"user\":1234"));
    assert!(kv.get(&mut sys, b"session:999999").is_none());

    // GET throughput: software index lookups vs HALO LOOKUP_B.
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let keygen = |i: u64| format!("session:{}", (i * 97) % 50_000).into_bytes();

    let sw = kv.bench_gets(&mut sys, None, CoreId(0), keygen, 300);
    let hw = kv.bench_gets(&mut sys, Some(&mut engine), CoreId(1), keygen, 300);

    println!("\nGET path           cycles/op");
    println!("software index     {:>8.0}", sw.cycles_per_op);
    println!("HALO LOOKUP_B      {:>8.0}", hw.cycles_per_op);
    println!(
        "speedup            {:>8.2}x (paper §4.8: the MemC3 cuckoo index is \
         exactly the table HALO accelerates)",
        sw.cycles_per_op / hw.cycles_per_op
    );

    // Deletes and overwrites keep working under the accelerated index.
    assert!(kv.delete(&mut sys, b"session:1234"));
    assert!(kv.get(&mut sys, b"session:1234").is_none());
    kv.set(&mut sys, b"session:1234", b"fresh").unwrap();
    assert_eq!(kv.get(&mut sys, b"session:1234"), Some(b"fresh".to_vec()));
    println!("\ndelete/overwrite under the accelerated index: OK");
}
