//! A virtual switch forwarding realistic traffic: the OVS-style
//! EMC → MegaFlow datapath of the paper's §2/§3, processed with the
//! software backend and then with HALO non-blocking lookups.
//!
//! Run with `cargo run --example vswitch_pipeline`.

use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
use halo_nfv::nf::{Scenario, TrafficGen};
use halo_nfv::sim::Cycle;
use halo_nfv::vswitch::{LookupBackend, SwitchConfig, VirtualSwitch};

fn run(backend: LookupBackend, label: &str) {
    let scenario = Scenario::ManyFlows {
        flows: 20_000,
        rules: 10,
    };
    let mut sys = MemorySystem::new(MachineConfig::default());
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());

    let mut cfg = SwitchConfig::typical(scenario.rules(), backend);
    cfg.megaflow_capacity = scenario.flows() / scenario.rules() + 1024;
    let mut vs = VirtualSwitch::new(&mut sys, CoreId(0), cfg);

    // Install one rule per flow, spread across the wildcard tuples.
    let gen = TrafficGen::new(scenario, 7);
    for (id, pkt) in gen.all_flows().enumerate() {
        vs.install_flow(
            &mut sys,
            &pkt.miniflow(),
            id % scenario.rules(),
            0,
            id as u64,
        )
        .expect("tuple capacity");
    }
    vs.warm_tables(&mut sys);

    // Forward 1,000 packets.
    let mut gen = TrafficGen::new(scenario, 99);
    let mut t = Cycle(0);
    for _ in 0..1000 {
        let pkt = gen.next_packet();
        let engine_opt = match backend {
            LookupBackend::Software => None,
            _ => Some(&mut engine),
        };
        let (_, done) = vs.process_packet(&mut sys, engine_opt, &pkt, t);
        t = done;
    }

    let b = vs.breakdown();
    let c = vs.counters();
    println!("--- {label} ---");
    println!(
        "cycles/packet: {:.0}   (EMC hits {}, MegaFlow hits {}, misses {})",
        vs.cycles_per_packet(),
        c.emc_hits,
        c.megaflow_hits,
        c.misses
    );
    println!(
        "breakdown: io {:.0}%, preproc {:.0}%, emc {:.0}%, megaflow {:.0}%, other {:.0}%",
        100.0 * b.io.0 as f64 / b.total().0 as f64,
        100.0 * b.preproc.0 as f64 / b.total().0 as f64,
        100.0 * b.emc.0 as f64 / b.total().0 as f64,
        100.0 * b.megaflow.0 as f64 / b.total().0 as f64,
        100.0 * b.other.0 as f64 / b.total().0 as f64,
    );
    println!(
        "flow classification share: {:.1}%",
        100.0 * b.classification_fraction()
    );
}

fn main() {
    run(LookupBackend::Software, "software classification");
    run(LookupBackend::HaloBlocking, "HALO blocking (LOOKUP_B)");
    run(
        LookupBackend::HaloNonBlocking,
        "HALO non-blocking (LOOKUP_NB + SNAPSHOT_READ)",
    );
}
