//! HALO's general applicability (§6.5): accelerating hash-table-based
//! network functions — NAT, prads, and an IP packet filter — and the
//! co-location interference study of §6.3.
//!
//! Run with `cargo run --example nf_acceleration`.

use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
use halo_nfv::nf::{colocation_experiment, ComputeNfKind, HashNf, HashNfKind, SwitchImpl};

fn main() {
    // --- Fig. 13: hash-table NF speedups. ------------------------------
    println!("=== hash-table NF acceleration (Fig. 13) ===");
    for kind in HashNfKind::all() {
        let entries = kind.table3_sizes()[1]; // the middle Table 3 config
        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut nf = HashNf::new(&mut sys, CoreId(0), kind, entries, 11);
        nf.warm(&mut sys);
        let sw = nf.run_software(&mut sys, 200);

        let mut sys = MemorySystem::new(MachineConfig::default());
        let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
        let mut nf = HashNf::new(&mut sys, CoreId(0), kind, entries, 11);
        nf.warm(&mut sys);
        let hw = nf.run_halo(&mut sys, &mut engine, 200);

        println!(
            "{:<13} ({} entries): software {:>6.0} cy/pkt, HALO {:>6.0} cy/pkt -> {:.2}x",
            kind.name(),
            entries,
            sw.cycles_per_packet,
            hw.cycles_per_packet,
            sw.cycles_per_packet / hw.cycles_per_packet
        );
    }

    // --- Fig. 12: co-location interference. ----------------------------
    println!("\n=== co-located NF interference (Fig. 12) ===");
    for nf in ComputeNfKind::all() {
        for imp in [SwitchImpl::Software, SwitchImpl::Halo] {
            let r = colocation_experiment(nf, 10_000, imp, 120, 3);
            println!(
                "{:<6} + {:<8} switch: throughput drop {:>5.1}%, L1D miss +{:.1}pp",
                nf.name(),
                match imp {
                    SwitchImpl::Software => "software",
                    SwitchImpl::Halo => "HALO",
                },
                100.0 * r.throughput_drop(),
                100.0 * r.l1_miss_increase()
            );
        }
    }
}
