//! Quickstart: build a simulated 16-core server, install a flow table,
//! and compare a software lookup against HALO's three instruction
//! primitives.
//!
//! Run with `cargo run --example quickstart`.

use halo_nfv::accel::{AcceleratorConfig, HaloEngine};
use halo_nfv::cpu::{build_sw_lookup, CoreModel, Scratch};
use halo_nfv::mem::{CoreId, MachineConfig, MemorySystem};
use halo_nfv::sim::Cycle;
use halo_nfv::tables::{CuckooTable, FlowKey};

fn main() {
    // 1. A simulated Skylake-SP-like machine (Table 2 of the paper).
    let mut sys = MemorySystem::new(MachineConfig::default());
    println!(
        "machine: {} cores, {} LLC slices, {} MB LLC",
        sys.config().cores,
        sys.config().slices,
        sys.config().llc_capacity() >> 20
    );

    // 2. A DPDK-style cuckoo flow table with 10,000 flows.
    let mut table = CuckooTable::with_capacity_for(sys.data_mut(), 10_000, 0.85, 13);
    for id in 0..10_000u64 {
        table
            .insert(sys.data_mut(), &FlowKey::synthetic(id, 13), 1000 + id)
            .expect("table sized for 10K flows");
    }
    println!(
        "table: {} entries at {:.0}% occupancy, {} KB",
        table.len(),
        table.occupancy() * 100.0,
        table.footprint() >> 10
    );

    // Warm the table into the LLC (steady state after traffic warm-up).
    for line in table.all_lines().collect::<Vec<_>>() {
        sys.warm_llc(line);
    }

    // 3. Software lookup: the ~210-instruction DPDK path on core 0.
    let key = FlowKey::synthetic(42, 13);
    let trace = table.lookup_traced(sys.data_mut(), &key, true);
    let mut scratch = Scratch::new(&mut sys);
    scratch.warm(&mut sys, CoreId(0));
    let mut core = CoreModel::new(CoreId(0), sys.config());
    let prog = build_sw_lookup(&trace, &mut scratch, None);
    let report = core.run(&prog, &mut sys, Cycle(0));
    println!(
        "software lookup: value {:?} in {} ({} uops)",
        trace.result,
        report.duration(),
        report.retired
    );

    // 4. HALO LOOKUP_B: blocking near-cache lookup.
    let mut engine = HaloEngine::new(&sys, AcceleratorConfig::default());
    let (value, done) = engine.lookup_b(&mut sys, CoreId(0), &table, &key, None, Cycle(0));
    println!("LOOKUP_B:        value {:?} in {} cycles", value, done.0);

    // 5. HALO LOOKUP_NB + SNAPSHOT_READ: non-blocking batch of 8.
    let dest = sys.data_mut().alloc_lines(64);
    let mut batch_done = Cycle(0);
    for i in 0..8u64 {
        let h = engine.lookup_nb(
            &mut sys,
            CoreId(0),
            &table,
            &FlowKey::synthetic(100 + i, 13),
            None,
            dest + i * 8,
            Cycle(i),
        );
        batch_done = batch_done.max(h.result_at);
    }
    let (first_word, snap_done) = engine.snapshot_read(&mut sys, CoreId(0), dest, batch_done);
    println!(
        "LOOKUP_NB x8:    first result {:?}, all {} results by cycle {}",
        HaloEngine::decode_nb(first_word),
        8,
        snap_done.0
    );
    println!(
        "throughput: ~{:.1} lookups/kilocycle in non-blocking mode",
        8.0 * 1000.0 / snap_done.0 as f64
    );
}
